package core

import (
	"testing"
	"time"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

func TestPacerWatermarksAndHysteresis(t *testing.T) {
	base := time.Unix(1000, 0)
	wall := base
	p := newPacer(testClock, OverloadConfig{Now: func() time.Time { return wall }})

	at := func(elapsed, streamed time.Duration) ShedLevel {
		wall = base.Add(elapsed)
		return p.observe(testClock.Ticks(streamed))
	}

	// Raise path: level climbs with lag (defaults 50/150/400 ms).
	if lvl := at(0, 0); lvl != ShedNone {
		t.Fatalf("t=0: %v", lvl)
	}
	if lvl := at(60*time.Millisecond, 0); lvl != ShedDemod {
		t.Fatalf("lag 60ms: %v", lvl)
	}
	if lvl := at(200*time.Millisecond, 0); lvl != ShedAnalysis {
		t.Fatalf("lag 200ms: %v", lvl)
	}
	if lvl := at(500*time.Millisecond, 0); lvl != ShedChunks {
		t.Fatalf("lag 500ms: %v", lvl)
	}

	// Hysteresis: lag 300ms is below the 400ms chunk watermark but above
	// half of it, so the level holds.
	if lvl := at(500*time.Millisecond, 200*time.Millisecond); lvl != ShedChunks {
		t.Fatalf("lag 300ms from chunks: %v", lvl)
	}
	// Below half the chunk watermark it falls — but only to the level the
	// remaining lag still justifies.
	if lvl := at(500*time.Millisecond, 320*time.Millisecond); lvl != ShedAnalysis {
		t.Fatalf("lag 180ms from chunks: %v", lvl)
	}
	// 100ms is between half and full analysis watermark: holds.
	if lvl := at(500*time.Millisecond, 400*time.Millisecond); lvl != ShedAnalysis {
		t.Fatalf("lag 100ms from analysis: %v", lvl)
	}
	if lvl := at(500*time.Millisecond, 440*time.Millisecond); lvl != ShedDemod {
		t.Fatalf("lag 60ms from analysis: %v", lvl)
	}
	if lvl := at(500*time.Millisecond, 480*time.Millisecond); lvl != ShedNone {
		t.Fatalf("lag 20ms: %v", lvl)
	}
	if peak := ShedLevel(p.peak.Load()); peak != ShedChunks {
		t.Errorf("peak %v", peak)
	}
}

func TestShedGateOrder(t *testing.T) {
	p := newPacer(testClock, OverloadConfig{})
	g := &shedGate{pacer: p}
	var out []flowgraph.Item
	emit := func(i flowgraph.Item) { out = append(out, i) }
	req := AnalysisRequest{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 0, End: 100}}

	// Non-requests always pass (the gate sits on the analysis path only).
	if err := g.Process(Chunk{}, emit); err != nil || len(out) != 1 {
		t.Fatalf("chunk blocked: %v %d", err, len(out))
	}
	// ShedNone: untouched.
	out = nil
	_ = g.Process(req, emit)
	if len(out) != 1 || out[0].(AnalysisRequest).HeaderOnly {
		t.Fatalf("clean request mutated: %+v", out)
	}
	// ShedDemod: downgraded to header-only, still delivered.
	p.level.Store(int32(ShedDemod))
	out = nil
	_ = g.Process(req, emit)
	if len(out) != 1 || !out[0].(AnalysisRequest).HeaderOnly {
		t.Fatalf("demod shed: %+v", out)
	}
	if p.headerOnly.Load() != 1 {
		t.Errorf("headerOnly counter %d", p.headerOnly.Load())
	}
	// ShedAnalysis: dropped.
	p.level.Store(int32(ShedAnalysis))
	out = nil
	_ = g.Process(req, emit)
	if len(out) != 0 {
		t.Fatalf("analysis-level request delivered: %+v", out)
	}
	if p.shedRequests.Load() != 1 {
		t.Errorf("shedRequests counter %d", p.shedRequests.Load())
	}
}

func TestRunStreamOverloadShedsChunks(t *testing.T) {
	stream := burstStream(200_000, 20, 51,
		iq.Interval{Start: 20_000, End: 60_000},
		iq.Interval{Start: 100_000, End: 140_000},
	)
	// A wall clock that jumps 30 ms per chunk observation makes the
	// pipeline hopelessly behind: every watermark is crossed.
	base := time.Unix(1000, 0)
	calls := 0
	now := func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * 30 * time.Millisecond)
	}
	p := NewPipeline(testClock, TimingOnly())
	res, err := p.RunStream(&sliceReader{s: stream}, StreamConfig{
		Overload: &OverloadConfig{Now: now},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degradation
	if d.ShedChunks == 0 || d.ShedSamples == 0 {
		t.Fatalf("no chunks shed under overload: %+v", d)
	}
	if d.PeakLevel != ShedChunks {
		t.Errorf("peak level %v", d.PeakLevel)
	}
	if !d.Any() {
		t.Error("Degradation.Any() false")
	}
	// Stream accounting still covers the whole input: shed chunks lose
	// their processing, not their place in the stream clock.
	if res.StreamLen != iq.Tick(len(stream)) {
		t.Errorf("stream len %d of %d", res.StreamLen, len(stream))
	}
}

// emitAnalyzer is a minimal analyzer: one output item per request.
type emitAnalyzer struct{ header int }

func (a *emitAnalyzer) Name() string                { return "emit-analyzer" }
func (a *emitAnalyzer) Accepts(f protocols.ID) bool { return true }
func (a *emitAnalyzer) Analyze(_ SampleAccessor, req AnalysisRequest, emit func(flowgraph.Item)) error {
	if req.HeaderOnly {
		a.header++
	}
	emit(req.Span)
	return nil
}

func TestRunStreamNoRetainStillDeliversLive(t *testing.T) {
	stream := burstStream(100_000, 20, 52,
		iq.Interval{Start: 10_000, End: 40_000},
		iq.Interval{Start: 40_080, End: 42_000},
	)
	p := NewPipeline(testClock, TimingOnly(), &emitAnalyzer{})
	var dets, outs int
	res, err := p.RunStream(&sliceReader{s: stream}, StreamConfig{
		NoRetain:    true,
		OnDetection: func(Detection) { dets++ },
		OnOutput:    func(flowgraph.Item) { outs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dets == 0 || outs == 0 {
		t.Fatalf("live delivery broken: %d detections, %d outputs", dets, outs)
	}
	if len(res.Detections) != 0 || len(res.Requests) != 0 || len(res.Outputs) != 0 {
		t.Errorf("NoRetain retained: %d det, %d req, %d out",
			len(res.Detections), len(res.Requests), len(res.Outputs))
	}
}

func TestRunStreamRetainsWithoutNoRetain(t *testing.T) {
	stream := burstStream(100_000, 20, 52,
		iq.Interval{Start: 10_000, End: 40_000},
		iq.Interval{Start: 40_080, End: 42_000},
	)
	p := NewPipeline(testClock, TimingOnly(), &emitAnalyzer{})
	var dets int
	res, err := p.RunStream(&sliceReader{s: stream}, StreamConfig{
		OnDetection: func(Detection) { dets++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dets == 0 || len(res.Detections) != dets {
		t.Errorf("callbacks %d, retained %d — both expected", dets, len(res.Detections))
	}
	if len(res.Outputs) == 0 {
		t.Error("outputs not retained by default")
	}
}
