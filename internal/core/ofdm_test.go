package core

import (
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/ofdm"
	"rfdump/internal/protocols"
)

func ofdmBurstStream(t *testing.T, payload int, snrDB float64) (iq.Samples, iq.Interval) {
	t.Helper()
	mod := ofdm.NewModulator()
	psdu := make([]byte, payload)
	r := dsp.NewRand(41)
	r.Bytes(psdu)
	burst := mod.Modulate(psdu)
	ch := phy.Channel{SNRdB: snrDB, CFOHz: 1800, PhaseRad: 0.4}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 400+len(burst.Samples)+400)
	span := iq.Interval{Start: 400, End: iq.Tick(400 + len(burst.Samples))}
	stream.Add(span.Start, burst.Samples)
	dsp.AWGN(dsp.NewRand(42), stream, 1)
	return stream, span
}

func TestOFDMDetectorFindsOFDM(t *testing.T) {
	stream, span := ofdmBurstStream(t, 600, 20)
	det := NewOFDMDetector(&memAccessor{s: stream}, OFDMConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 1 {
		t.Fatalf("detections = %v", dets)
	}
	if dets[0].Family != protocols.WiFi80211g || dets[0].Detector != "802.11g-cp" {
		t.Errorf("detection %v", dets[0])
	}
	if dets[0].Span != span {
		t.Errorf("span %v", dets[0].Span)
	}
}

func TestOFDMDetectorRejectsDSSS(t *testing.T) {
	stream, span := wifiBurstStream(t, protocols.WiFi80211b1M, 300, 20, 400)
	det := NewOFDMDetector(&memAccessor{s: stream}, OFDMConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("DSSS classified as OFDM: %v", dets)
	}
}

func TestOFDMDetectorRejectsGFSK(t *testing.T) {
	stream, span := btBurstStream(t, 4, 20)
	det := NewOFDMDetector(&memAccessor{s: stream}, OFDMConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("GFSK classified as OFDM: %v", dets)
	}
}

func TestOFDMDetectorRejectsNoise(t *testing.T) {
	stream := dsp.NoiseBlock(dsp.NewRand(43), 20000, 1)
	det := NewOFDMDetector(&memAccessor{s: stream}, OFDMConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: iq.Interval{Start: 0, End: 20000}},
		func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("noise classified as OFDM: %v", dets)
	}
}

func TestOFDMDetectorLowSNRMisses(t *testing.T) {
	// Like the other detectors, a knee: at -2 dB the CP metric drowns.
	stream, span := ofdmBurstStream(t, 600, -3)
	det := NewOFDMDetector(&memAccessor{s: stream}, OFDMConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("-3 dB OFDM detected (suspicious threshold): %v", dets)
	}
}

func TestOFDMInPipeline(t *testing.T) {
	stream, span := ofdmBurstStream(t, 600, 20)
	cfg := Detect(OFDMSpec(OFDMConfig{}))
	p := NewPipeline(testClock, cfg)
	res, err := p.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Detections {
		if d.Family == protocols.WiFi80211g && d.Span.Overlaps(span) {
			found = true
		}
	}
	if !found {
		t.Errorf("pipeline missed OFDM burst: %v", res.Detections)
	}
}

func TestWiFiPhaseDoesNotClaimOFDM(t *testing.T) {
	// Cross-rejection: an OFDM burst must not be classified as DSSS by
	// the Barker-signature detector.
	stream, span := ofdmBurstStream(t, 600, 20)
	det := NewWiFiPhase(&memAccessor{s: stream}, WiFiPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("OFDM classified as DSSS: %v", dets)
	}
}

func TestBTPhaseDoesNotClaimOFDM(t *testing.T) {
	stream, span := ofdmBurstStream(t, 100, 20)
	det := NewBTPhase(&memAccessor{s: stream}, testClock, BTPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("OFDM classified as GFSK: %v", dets)
	}
}
