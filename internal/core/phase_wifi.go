package core

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// SampleAccessor gives detectors that analyze the signal (phase,
// frequency) bounded access to the sample stream. "After the detection
// stage, the stream of signal is only accessed as needed" (Section 2.2) —
// the accessor is how that selective access is expressed. It is an alias
// of the registry-facing interface so out-of-tree protocol modules can
// implement detectors and analyzers against the same accessor.
type SampleAccessor = protocols.SampleSource

// WiFiPhaseConfig tunes the DBPSK detector.
type WiFiPhaseConfig struct {
	// WindowSamples is the analysis window (defaults to one chunk).
	WindowSamples int
	// Threshold is the minimum normalized signature correlation for a
	// window to count as Barker/DBPSK.
	Threshold float64
	// MinRunWindows is how many consecutive matching windows make a
	// detection (1 keeps even lone PLCP headers).
	MinRunWindows int
}

func (c WiFiPhaseConfig) withDefaults() WiFiPhaseConfig {
	if c.WindowSamples <= 0 {
		c.WindowSamples = iq.ChunkSamples
	}
	if c.Threshold == 0 {
		c.Threshold = 0.68
	}
	if c.MinRunWindows <= 0 {
		c.MinRunWindows = 1
	}
	return c
}

// WiFiPhase is the 802.11b phase detector of Section 4.5: it correlates
// the first derivative of phase against the precomputed sequence of phase
// changes that Barker chipping produces across the 8 samples of each
// 1 us symbol (the "somewhat inelegant solution" forced by the 8 MHz
// capture of a 22 MHz signal — which we model identically).
//
// It scans each peak window by window, so a high-rate packet matches only
// during its DBPSK PLCP preamble+header while a 1 Mbps packet matches
// throughout — exactly the selectivity Table 4 measures.
type WiFiPhase struct {
	cfg WiFiPhaseConfig
	src SampleAccessor

	// sig[m] is +1 when the Barker template keeps sign from sample m to
	// m+1 and -1 when it flips; boundary positions are skipped.
	sig [wifi.SymbolSPS - 1]float64

	// scratch buffers
	diffs []float64
	coss  []float64
}

// NewWiFiPhase returns the detector reading samples through src.
func NewWiFiPhase(src SampleAccessor, cfg WiFiPhaseConfig) *WiFiPhase {
	cfg = cfg.withDefaults()
	w := &WiFiPhase{cfg: cfg, src: src}
	sig := wifi.PhaseSignature()
	for m := range w.sig {
		if sig[m] == 0 {
			w.sig[m] = 1
		} else {
			w.sig[m] = -1
		}
	}
	w.diffs = make([]float64, cfg.WindowSamples)
	w.coss = make([]float64, cfg.WindowSamples)
	return w
}

// Name implements flowgraph.Block.
func (w *WiFiPhase) Name() string { return "802.11-phase" }

// Process implements flowgraph.Block.
func (w *WiFiPhase) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		w.analyzePeak(pk, emit)
	}
	return nil
}

// windowScore computes the best Barker-signature correlation over the 8
// possible symbol alignments for one window of samples. Score 1.0 means
// every phase transition matches the chip pattern exactly.
func (w *WiFiPhase) windowScore(samples iq.Samples) float64 {
	if len(samples) < 2*wifi.SymbolSPS {
		return 0
	}
	d := dsp.PhaseDiff(samples, w.diffs[:0])
	// cos(d) once per transition; signature entries in {0, pi} make the
	// correlation a signed average of these cosines.
	c := w.coss[:len(d)]
	for i, v := range d {
		c[i] = math.Cos(v)
	}
	best := 0.0
	for a := 0; a < wifi.SymbolSPS; a++ {
		var acc float64
		var n int
		for i := range c {
			m := (i + a) % wifi.SymbolSPS
			if m == wifi.SymbolSPS-1 {
				continue // inter-symbol boundary: data-dependent
			}
			acc += w.sig[m] * c[i]
			n++
		}
		if n > 0 {
			if s := acc / float64(n); s > best {
				best = s
			}
		}
	}
	return best
}

func (w *WiFiPhase) analyzePeak(pk Peak, emit func(flowgraph.Item)) {
	win := iq.Tick(w.cfg.WindowSamples)
	runStart := iq.Tick(-1)
	runWindows := 0
	runScore := 0.0

	flush := func(end iq.Tick) {
		if runStart >= 0 && runWindows >= w.cfg.MinRunWindows {
			conf := runScore / float64(runWindows)
			if conf > 1 {
				conf = 1
			}
			emit(Detection{
				Family:     protocols.WiFi80211b1M,
				Span:       iq.Interval{Start: runStart, End: end},
				Detector:   "802.11-dbpsk",
				Confidence: conf,
				Channel:    -1,
			})
		}
		runStart = -1
		runWindows = 0
		runScore = 0
	}

	for t := pk.Span.Start; t < pk.Span.End; t += win {
		end := t + win
		if end > pk.Span.End {
			end = pk.Span.End
		}
		samples := w.src.Slice(iq.Interval{Start: t, End: end})
		score := w.windowScore(samples)
		if score >= w.cfg.Threshold {
			if runStart < 0 {
				runStart = t
			}
			runWindows++
			runScore += score
		} else {
			flush(t)
		}
	}
	flush(pk.Span.End)
}

// Flush implements flowgraph.Block.
func (w *WiFiPhase) Flush(func(flowgraph.Item)) error { return nil }
