package core

import (
	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// BTFreqConfig tunes the frequency-domain Bluetooth detector.
type BTFreqConfig struct {
	// FFTSize is the transform size per chunk (power of two).
	FFTSize int
	// Bins divides the band; 8 bins over 8 MHz puts one Bluetooth
	// channel per bin (Section 4.6).
	Bins int
	// Concentration is the fraction of chunk spectral energy a single
	// bin must hold to declare a narrowband (Bluetooth-width) signal.
	Concentration float64
}

func (c BTFreqConfig) withDefaults() BTFreqConfig {
	if c.FFTSize <= 0 {
		c.FFTSize = 256
	}
	if !dsp.IsPow2(c.FFTSize) {
		c.FFTSize = dsp.NextPow2(c.FFTSize)
	}
	if c.Bins <= 0 {
		c.Bins = 8
	}
	if c.Concentration == 0 {
		c.Concentration = 0.5
	}
	return c
}

// BTFreq is the frequency-analysis detector of Section 4.6: per busy
// chunk it FFTs the samples, folds the spectrum into one bin per
// Bluetooth channel, and when exactly one bin dominates it attributes the
// chunk to that channel. A start/end state machine per channel merges
// consecutive chunks into packet-long detections.
type BTFreq struct {
	cfg BTFreqConfig

	// per-channel ongoing run state
	runStart []iq.Tick
	runEnd   []iq.Tick

	binBuf []float64
}

// NewBTFreq returns the detector.
func NewBTFreq(cfg BTFreqConfig) *BTFreq {
	cfg = cfg.withDefaults()
	b := &BTFreq{cfg: cfg}
	b.runStart = make([]iq.Tick, cfg.Bins)
	b.runEnd = make([]iq.Tick, cfg.Bins)
	for i := range b.runStart {
		b.runStart[i] = -1
	}
	return b
}

// Name implements flowgraph.Block.
func (b *BTFreq) Name() string { return "bt-freq" }

// Process implements flowgraph.Block.
func (b *BTFreq) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	hot := -1
	if meta.Busy && len(meta.Chunk.Samples) > 0 {
		hot = b.classifyChunk(meta)
	}
	for ch := 0; ch < b.cfg.Bins; ch++ {
		if ch == hot {
			if b.runStart[ch] < 0 {
				b.runStart[ch] = meta.Chunk.Span.Start
			}
			b.runEnd[ch] = meta.Chunk.Span.End
		} else if b.runStart[ch] >= 0 {
			b.emitRun(ch, emit)
		}
	}
	return nil
}

// classifyChunk returns the dominating channel bin, or -1.
func (b *BTFreq) classifyChunk(meta *ChunkMeta) int {
	bins := dsp.BinPowers(meta.Chunk.Samples, b.cfg.FFTSize, b.cfg.Bins)
	var total, best, second float64
	bestIdx := -1
	for i, p := range bins {
		total += p
		if p > best {
			second = best
			best = p
			bestIdx = i
		} else if p > second {
			second = p
		}
	}
	if total <= 0 {
		return -1
	}
	if best/total < b.cfg.Concentration {
		return -1 // energy spread across bins: wideband (802.11) or noise
	}
	if second/total > b.cfg.Concentration/2 {
		return -1 // two hot bins: overlapping signals
	}
	return bestIdx
}

func (b *BTFreq) emitRun(ch int, emit func(flowgraph.Item)) {
	span := iq.Interval{Start: b.runStart[ch], End: b.runEnd[ch]}
	b.runStart[ch] = -1
	// Ignore one-chunk blips shorter than the shortest Bluetooth packet
	// (an ID packet is 68 us ≈ 2.7 chunks).
	if span.Len() < 2*iq.ChunkSamples {
		return
	}
	emit(Detection{
		Family:     protocols.Bluetooth,
		Span:       span,
		Detector:   "bt-freq",
		Confidence: 0.6,
		Channel:    ch,
	})
}

// Flush implements flowgraph.Block: close any open runs.
func (b *BTFreq) Flush(emit func(flowgraph.Item)) error {
	for ch := 0; ch < b.cfg.Bins; ch++ {
		if b.runStart[ch] >= 0 {
			b.emitRun(ch, emit)
		}
	}
	return nil
}
