package core

import (
	"math"
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// toneBurst writes a tone at offsetHz into stream over span.
func toneBurst(stream iq.Samples, span iq.Interval, offsetHz, amp float64) {
	ph := 0.0
	for t := span.Start; t < span.End && int(t) < len(stream); t++ {
		ph += 2 * math.Pi * offsetHz / 8e6
		stream[t] += complex(float32(amp*math.Cos(ph)), float32(amp*math.Sin(ph)))
	}
}

func runSubband(t *testing.T, sp *SubbandPeak, stream iq.Samples) []SubbandPeakResult {
	t.Helper()
	var out []SubbandPeakResult
	emit := func(it flowgraph.Item) { out = append(out, it.(SubbandPeakResult)) }
	for s := 0; s < len(stream); s += iq.ChunkSamples {
		e := s + iq.ChunkSamples
		if e > len(stream) {
			e = len(stream)
		}
		if err := sp.Process(Chunk{
			Seq:     s / iq.ChunkSamples,
			Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
			Samples: stream[s:e],
		}, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Flush(emit); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSubbandSeparatesFrequencyOverlap(t *testing.T) {
	// Two narrowband transmissions overlapping in TIME but in different
	// subbands — the Section 5.4 scenario. The single-band peak detector
	// coalesces them; the subband detector must report two.
	stream := dsp.NoiseBlock(dsp.NewRand(61), 60_000, 1.0)
	spanA := iq.Interval{Start: 10_000, End: 30_000}
	spanB := iq.Interval{Start: 20_000, End: 45_000} // overlaps A in time
	toneBurst(stream, spanA, -3e6, 10)               // band 0
	toneBurst(stream, spanB, +3e6, 10)               // band 3

	// Baseline: the fine-grained detector sees one merged peak.
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 1 {
		t.Logf("note: single-band detector produced %d peaks", len(peaks))
	}

	sp := NewSubbandPeak(4)
	results := runSubband(t, sp, stream)
	byBand := map[int][]SubbandPeakResult{}
	for _, r := range results {
		byBand[r.Band] = append(byBand[r.Band], r)
	}
	if len(byBand[0]) != 1 || len(byBand[3]) != 1 {
		t.Fatalf("subband results: %v", results)
	}
	// Chunk-granularity spans must bracket the true transmissions.
	a := byBand[0][0].Span
	if a.Start > spanA.Start || a.End < spanA.End-iq.ChunkSamples {
		t.Errorf("band0 span %v vs truth %v", a, spanA)
	}
	b := byBand[3][0].Span
	if b.Start > spanB.Start || b.End < spanB.End-iq.ChunkSamples {
		t.Errorf("band3 span %v vs truth %v", b, spanB)
	}
	// No phantom activity in the quiet middle bands.
	if len(byBand[1]) != 0 || len(byBand[2]) != 0 {
		t.Errorf("phantom subband peaks: %v", results)
	}
}

func TestSubbandWidebandHitsAllBands(t *testing.T) {
	// A wideband (DSSS-like) burst occupies every subband.
	stream := dsp.NoiseBlock(dsp.NewRand(62), 30_000, 1.0)
	r := dsp.NewRand(63)
	for ti := 8000; ti < 20000; ti++ {
		stream[ti] += complex(float32(6*r.Norm()), float32(6*r.Norm()))
	}
	sp := NewSubbandPeak(4)
	results := runSubband(t, sp, stream)
	bands := map[int]bool{}
	for _, res := range results {
		bands[res.Band] = true
	}
	if len(bands) != 4 {
		t.Errorf("wideband burst seen in %d/4 bands: %v", len(bands), results)
	}
}

func TestSubbandQuiet(t *testing.T) {
	stream := dsp.NoiseBlock(dsp.NewRand(64), 40_000, 1.0)
	sp := NewSubbandPeak(4)
	results := runSubband(t, sp, stream)
	if len(results) > 2 {
		t.Errorf("noise produced %d subband peaks", len(results))
	}
}

func TestSubbandRejectsBadItem(t *testing.T) {
	sp := NewSubbandPeak(2)
	if err := sp.Process("bogus", func(flowgraph.Item) {}); err == nil {
		t.Error("bad item accepted")
	}
}
