package core

import (
	"runtime"
	"testing"

	"rfdump/internal/iq"
)

// capturedBurst is one OnDetectionCapture delivery, copied out of the
// session-owned buffer (the callback contract forbids retaining it).
type capturedBurst struct {
	det  Detection
	span iq.Interval
	iq   iq.Samples
}

func captureRun(t *testing.T, stream iq.Samples, cfg StreamConfig) []capturedBurst {
	t.Helper()
	var got []capturedBurst
	cfg.OnDetectionCapture = func(det Detection, span iq.Interval, burst iq.Samples) {
		got = append(got, capturedBurst{det, span, append(iq.Samples(nil), burst...)})
	}
	if _, err := NewPipeline(testClock, TimingOnly()).
		RunStream(&sliceReader{s: stream}, cfg); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCaptureOnDetection: every detection delivers its triggering
// samples, padded by CapturePad on each side, byte-identical to the
// source stream over the reported span — the snippet a spectrum DVR can
// later re-demodulate.
func TestCaptureOnDetection(t *testing.T) {
	stream := sessionStream()
	bursts := captureRun(t, stream, StreamConfig{})
	if len(bursts) == 0 {
		t.Fatal("no captures; the reference stream should trigger detections")
	}
	for i, b := range bursts {
		want := b.det.Span.Expand(iq.Tick(iq.ChunkSamples)) // default pad = one chunk
		if b.span.Start > b.det.Span.Start || b.span.End < b.det.Span.End {
			t.Errorf("capture %d: span %v does not cover detection %v", i, b.span, b.det.Span)
		}
		if b.span.Start != want.Start {
			t.Errorf("capture %d: span starts at %d, want padded %d", i, b.span.Start, want.Start)
		}
		if got, wantN := iq.Tick(len(b.iq)), b.span.Len(); got != wantN {
			t.Fatalf("capture %d: %d samples for span %v", i, got, b.span)
		}
		for j, s := range b.iq {
			if s != stream[int(b.span.Start)+j] {
				t.Fatalf("capture %d: sample %d differs from the source stream", i, j)
			}
		}
	}
}

// TestCaptureBounds: CapturePad<0 disables padding; CaptureMaxSamples
// truncates long bursts keeping the head (where preamble and sync live).
func TestCaptureBounds(t *testing.T) {
	stream := sessionStream()
	bursts := captureRun(t, stream, StreamConfig{CapturePad: -1, CaptureMaxSamples: 4096})
	if len(bursts) == 0 {
		t.Fatal("no captures")
	}
	for i, b := range bursts {
		if len(b.iq) > 4096 {
			t.Errorf("capture %d: %d samples exceed CaptureMaxSamples", i, len(b.iq))
		}
		if b.span.Start != b.det.Span.Start {
			t.Errorf("capture %d: padding applied despite CapturePad<0 (%v vs %v)",
				i, b.span, b.det.Span)
		}
		if b.det.Span.Len() > 4096 && b.span.End != b.det.Span.Start+4096 {
			t.Errorf("capture %d: truncation did not keep the head: %v from %v", i, b.span, b.det.Span)
		}
	}
}

// TestStreamSteadyStateAllocsWithCapture is the DVR variant of the
// zero-alloc acceptance gate: enabling capture-on-detection must not
// make the quiet steady state allocate — the copy happens only when a
// detection fires, and the burst buffer is reused across deliveries.
func TestStreamSteadyStateAllocsWithCapture(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc gate runs in the non-race job")
	}
	const n = 4000 * iq.ChunkSamples
	stream := burstStream(n, 20, 7) // noise: the steady, quiet ether
	cfg := TimingOnly()
	cfg.Peak.NoiseFloor = 1
	e := NewEngine(testClock, cfg)

	captures := 0
	runOnce := func() {
		s, err := e.NewSession(StreamConfig{
			OnDetectionCapture: func(Detection, iq.Interval, iq.Samples) { captures++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(&sliceReader{s: stream}); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // warm pools, grow scratch to steady state

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	runOnce()
	runtime.ReadMemStats(&after)

	allocs := float64(after.Mallocs - before.Mallocs)
	perChunk := allocs / float64(n/iq.ChunkSamples)
	t.Logf("%.0f allocations over %d chunks = %.4f allocs/chunk (%d captures)",
		allocs, n/iq.ChunkSamples, perChunk, captures)
	if perChunk > 0.1 {
		t.Errorf("capture-enabled steady state allocates %.3f objects per chunk, want ~0 (<= 0.1)", perChunk)
	}
	if captures != 0 {
		t.Errorf("quiet stream captured %d bursts; noise must not trigger the copy path", captures)
	}
}
