package core

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// OFDMConfig tunes the cyclic-prefix detector.
type OFDMConfig struct {
	// ProbeSamples bounds how much of each peak is analyzed.
	ProbeSamples int
	// Threshold is the minimum normalized folded CP correlation.
	Threshold float64
	// SymbolPeriod is the OFDM symbol period in monitor samples
	// (32 = 4 us at 8 Msps for 802.11a/g).
	SymbolPeriod int
	// Lags are the candidate T_FFT lags in monitor samples (3.2 us =
	// 25.6 samples at 8 Msps, so {25, 26}).
	Lags []int
}

func (c OFDMConfig) withDefaults() OFDMConfig {
	if c.ProbeSamples <= 0 {
		c.ProbeSamples = 8 * iq.ChunkSamples // 200 us: ~50 OFDM symbols
	}
	if c.Threshold == 0 {
		c.Threshold = 0.32
	}
	if c.SymbolPeriod <= 0 {
		c.SymbolPeriod = 32
	}
	if len(c.Lags) == 0 {
		c.Lags = []int{25, 26}
	}
	return c
}

// OFDMDetector is the "quick detector for OFDM" the paper leaves as
// future work (Section 3.3): every OFDM symbol ends with a cyclic
// prefix — a copy of the segment T_FFT earlier — so the autocorrelation
// at lag T_FFT, folded by the symbol period, shows a strong peak at the
// CP phase. The property survives band-limited capture (filtering is
// LTI, so the time-domain repetition is preserved in the captured
// subcarriers), which is what makes an 8 MHz monitor able to classify a
// 20 MHz OFDM transmission it cannot decode.
//
// Cost: one complex multiply-accumulate per probed sample per lag — the
// same order as the other phase detectors, far below demodulation.
type OFDMDetector struct {
	cfg OFDMConfig
	src SampleAccessor
}

// NewOFDMDetector returns the detector.
func NewOFDMDetector(src SampleAccessor, cfg OFDMConfig) *OFDMDetector {
	return &OFDMDetector{cfg: cfg.withDefaults(), src: src}
}

// Name implements flowgraph.Block.
func (o *OFDMDetector) Name() string { return "802.11g-ofdm" }

// Process implements flowgraph.Block.
func (o *OFDMDetector) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		o.analyzePeak(pk, emit)
	}
	return nil
}

// score computes the best folded CP metric over lags and fold phases.
func (o *OFDMDetector) score(samples iq.Samples) float64 {
	period := o.cfg.SymbolPeriod
	if len(samples) < 4*period {
		return 0
	}
	best := 0.0
	for _, lag := range o.cfg.Lags {
		// Folded correlation: accumulate x[n]*conj(x[n+lag]) into the
		// bucket n mod period. The CP region of every symbol folds into
		// the same few buckets; elsewhere the signal is uncorrelated.
		accRe := make([]float64, period)
		accIm := make([]float64, period)
		var energy float64
		n := len(samples) - lag
		for i := 0; i < n; i++ {
			a := samples[i]
			b := samples[i+lag]
			ar, ai := float64(real(a)), float64(imag(a))
			br, bi := float64(real(b)), float64(imag(b))
			ph := i % period
			// a * conj(b)
			accRe[ph] += ar*br + ai*bi
			accIm[ph] += ai*br - ar*bi
			energy += ar*ar + ai*ai
		}
		if energy == 0 {
			continue
		}
		// The CP spans ~6 monitor samples (0.8 us); sum the strongest
		// window of 6 adjacent fold phases.
		const cpWin = 6
		mag := make([]float64, period)
		var sumMag float64
		for ph := 0; ph < period; ph++ {
			mag[ph] = math.Hypot(accRe[ph], accIm[ph])
			sumMag += mag[ph]
		}
		for start := 0; start < period; start++ {
			var w float64
			for k := 0; k < cpWin; k++ {
				w += mag[(start+k)%period]
			}
			// The OFDM signature is concentration, not just magnitude:
			// a narrowband signal (GFSK) correlates at this lag too, but
			// uniformly across fold phases. Require the best CP window
			// to hold well more than its fair share of the correlation.
			contrast := (w / cpWin) / (sumMag / float64(period))
			if contrast < 2 {
				continue
			}
			// Normalize: perfect correlation across the CP window would
			// equal energy * cpWin/period.
			s := w / (energy * cpWin / float64(period))
			if s > best {
				best = s
			}
		}
	}
	return best
}

// preambleScore checks the short-frame path: the L-STF and L-LTF are
// each two identical back-to-back symbols, so the first 16 us of any
// OFDM burst self-correlates at a lag of one symbol period with near-1
// magnitude (the Schmidl-Cox property). Narrowband signals also
// correlate at that lag, so a wideband check (spectral energy spread
// over multiple bins) gates the verdict.
func (o *OFDMDetector) preambleScore(samples iq.Samples) float64 {
	period := o.cfg.SymbolPeriod
	if len(samples) < 4*period {
		return 0
	}
	head := samples[:4*period]
	// The preamble is STF,STF,LTF,LTF (one period each through the
	// monitor): samples correlate at lag=period inside [P,2P) (STF
	// repeat) and [3P,4P) (LTF repeat); the boundary range [2P,3P)
	// compares LTF against STF and would only dilute the statistic.
	var accRe, accIm, energy float64
	for _, r := range [2][2]int{{period, 2 * period}, {3 * period, 4 * period}} {
		for n := r[0]; n < r[1]; n++ {
			a, b := head[n], head[n-period]
			ar, ai := float64(real(a)), float64(imag(a))
			br, bi := float64(real(b)), float64(imag(b))
			accRe += ar*br + ai*bi
			accIm += ai*br - ar*bi
			energy += ar*ar + ai*ai
		}
	}
	if energy == 0 {
		return 0
	}
	corr := math.Hypot(accRe, accIm) / energy
	if corr < 0.6 {
		return 0
	}
	// Wideband gate: a CW/GFSK carrier concentrates in one of 8 bins;
	// the OFDM preamble spreads across the captured subcarriers.
	bins := binPowers8(head)
	var total, bestBin float64
	for _, p := range bins {
		total += p
		if p > bestBin {
			bestBin = p
		}
	}
	if total == 0 || bestBin/total > 0.45 {
		return 0
	}
	return corr
}

// binPowers8 computes the 8-channel spectral split of a block (thin
// wrapper so the detector does not depend on FFT sizes elsewhere).
func binPowers8(block iq.Samples) []float64 {
	return dspBinPowers(block, 128, 8)
}

func (o *OFDMDetector) analyzePeak(pk Peak, emit func(flowgraph.Item)) {
	probe := pk.Span
	if probe.Len() > iq.Tick(o.cfg.ProbeSamples) {
		probe.End = probe.Start + iq.Tick(o.cfg.ProbeSamples)
	}
	samples := o.src.Slice(probe)
	name := "802.11g-cp"
	s := o.score(samples)
	if s < o.cfg.Threshold {
		// Short frames (an OFDM ACK is 3 data symbols) carry too few
		// cyclic prefixes for the fold statistic; their 16 us preamble
		// still gives them away.
		s = o.preambleScore(samples)
		name = "802.11g-preamble"
		if s < 0.6 {
			return
		}
	}
	conf := s
	if conf > 1 {
		conf = 1
	}
	emit(Detection{
		Family:     protocols.WiFi80211g,
		Span:       pk.Span,
		Detector:   name,
		Confidence: conf,
		Channel:    -1,
	})
}

// Flush implements flowgraph.Block.
func (o *OFDMDetector) Flush(func(flowgraph.Item)) error { return nil }

// dspBinPowers is an indirection for the spectral split (kept at the
// bottom to make the dependency explicit and testable).
func dspBinPowers(block iq.Samples, fftSize, nbins int) []float64 {
	return dsp.BinPowers(block, fftSize, nbins)
}
