//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// gates skip under it because the runtime deliberately randomizes
// sync.Pool reuse (dropping puts) when racing.
const raceEnabled = true
