package metrics

import (
	"net/http"
)

// Handler serves registry snapshots over HTTP: the /api/metricz surface
// of a monitoring daemon. Text by default (the same rendering as
// rfdump -metrics), JSON with ?format=json. Each prepare hook runs
// before the snapshot is taken — the place to refresh pull-style gauges
// (pool occupancy, subscriber counts) that nothing updates on a hot
// path. A nil registry serves empty snapshots.
func Handler(r *Registry, prepare ...func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		for _, fn := range prepare {
			fn()
		}
		snap := r.Snapshot()
		switch req.URL.Query().Get("format") {
		case "", "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
		default:
			http.Error(w, "unknown format (want text or json)", http.StatusBadRequest)
		}
	})
}
