package metrics

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzHistogramBuckets fuzzes both the bucket boundary set and the
// observed values, checking the structural invariants every snapshot
// must hold: bucket counts sum to Count, every observation lands in the
// bucket whose bound brackets it, Sum is exact, and quantiles stay
// inside the bound range. The raw bytes are split into boundary and
// value streams so the fuzzer can mutate degenerate boundary sets
// (duplicates, negatives, unsorted, empty).
func FuzzHistogramBuckets(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 10}, []byte{0, 0, 0, 0, 0, 0, 0, 5})
	f.Add([]byte{}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 3}, // dup bounds
		[]byte{0, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 4})
	f.Add([]byte{0x80, 0, 0, 0, 0, 0, 0, 1}, []byte{0x80, 0, 0, 0, 0, 0, 0, 2})

	f.Fuzz(func(t *testing.T, boundBytes, valueBytes []byte) {
		var bounds []int64
		for i := 0; i+8 <= len(boundBytes) && len(bounds) < 64; i += 8 {
			bounds = append(bounds, int64(binary.BigEndian.Uint64(boundBytes[i:])))
		}
		var values []int64
		for i := 0; i+8 <= len(valueBytes) && len(values) < 256; i += 8 {
			values = append(values, int64(binary.BigEndian.Uint64(valueBytes[i:])))
		}

		h := NewHistogram(bounds)
		var wantSum int64
		for _, v := range values {
			h.Observe(v)
			wantSum += v
		}
		s := h.Snapshot()

		if s.Count != int64(len(values)) {
			t.Fatalf("count %d, want %d", s.Count, len(values))
		}
		if s.Sum != wantSum {
			t.Fatalf("sum %d, want %d", s.Sum, wantSum)
		}
		var total int64
		for _, c := range s.Counts {
			total += c
		}
		if total != s.Count {
			t.Fatalf("bucket total %d != count %d", total, s.Count)
		}
		if !sort.SliceIsSorted(s.Bounds, func(i, j int) bool { return s.Bounds[i] < s.Bounds[j] }) {
			t.Fatalf("bounds not sorted: %v", s.Bounds)
		}
		for i := 1; i < len(s.Bounds); i++ {
			if s.Bounds[i] == s.Bounds[i-1] {
				t.Fatalf("duplicate bound %d survived: %v", s.Bounds[i], s.Bounds)
			}
		}
		if len(s.Counts) != len(s.Bounds)+1 {
			t.Fatalf("%d buckets for %d bounds", len(s.Counts), len(s.Bounds))
		}

		// Recompute the expected bucketing independently and compare.
		want := make([]int64, len(s.Bounds)+1)
		for _, v := range values {
			idx := sort.Search(len(s.Bounds), func(i int) bool { return s.Bounds[i] >= v })
			want[idx]++
		}
		for i := range want {
			if want[i] != s.Counts[i] {
				t.Fatalf("bucket %d = %d, want %d (bounds %v values %v)",
					i, s.Counts[i], want[i], s.Bounds, values)
			}
		}

		// Quantiles must stay inside the bound range.
		if len(s.Bounds) > 0 && s.Count > 0 {
			for _, q := range []float64{0, 0.5, 0.99, 1} {
				est := s.Quantile(q)
				if est < s.Bounds[0] || est > s.Bounds[len(s.Bounds)-1] {
					t.Fatalf("quantile %v = %d outside bounds [%d, %d]",
						q, est, s.Bounds[0], s.Bounds[len(s.Bounds)-1])
				}
			}
		}
	})
}
