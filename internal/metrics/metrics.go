// Package metrics is the observability substrate of the pipeline:
// lock-free counters, gauges and fixed-bucket histograms that every stage
// (flowgraph blocks, fast detectors, analyzers, the overload pacer, the
// fault injector) updates on its hot path, plus a named registry whose
// snapshots feed the operator surfaces (rfdump -metrics, the expvar
// endpoint, rfbench -json).
//
// The paper's whole argument is a cost ledger — detectors must stay an
// order of magnitude cheaper than demodulation (Table 1, Figure 9) — so
// the primitives are built to be cheap enough to leave on: one atomic
// add per update, no locks, no allocation. All primitives are safe for
// concurrent use by the parallel scheduler, and every method is a no-op
// on a nil receiver so instrumented code needs no "is metrics enabled?"
// branches: a nil *Registry hands out nil primitives and the whole layer
// collapses to a pointer test per update.
//
// Snapshot semantics: values are monotone between resets (counters and
// histogram buckets only grow), and a snapshot taken after all writers
// have quiesced is exact — nothing is sampled or lost. A snapshot taken
// mid-run may be torn across *different* metrics (it is not a global
// consistent cut) but each individual value is a real value the metric
// held, and a histogram's Count always equals the sum of its buckets.
package metrics

import (
	"sort"
	"sync/atomic"
)

// Counter is a monotone event counter. The zero value is ready to use;
// a nil Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Load returns the current value (0 for a nil Counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is a last-value (or high-watermark) metric. The zero value is
// ready to use; a nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n if n is larger (lock-free watermark).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 for a nil Gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.v.Store(0)
}

// DefBucketsNs is the default latency bucket ladder: a 1-2.5-5 decade
// sweep from 250 ns to 1 s, sized for per-chunk detector costs (a chunk
// is 25 us of air at 8 Msps) up through whole-trace demodulation.
var DefBucketsNs = []int64{
	250, 500,
	1_000, 2_500, 5_000,
	10_000, 25_000, 50_000,
	100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000,
	10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000,
}

// Histogram is a fixed-bucket histogram: bucket i counts observations
// v <= Bounds[i], with one implicit overflow bucket above the last
// bound. Observe is one binary search plus two atomic adds. A nil
// Histogram discards observations.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	sum     atomic.Int64
}

// NewHistogram returns a histogram over the given upper bounds. Bounds
// are sorted and deduplicated; an empty slice yields a single overflow
// bucket (count/sum only).
func NewHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	// Deduplicate in place.
	out := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			out = append(out, b)
		}
	}
	bs = out
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Count is
// derived from the bucket counts, so it is always internally consistent
// (Count == sum of Counts) even when taken mid-run.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// entry for observations above the last bound.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	// Count is the total number of observations (sum of Counts).
	Count int64 `json:"count"`
	// Sum is the running total of observed values.
	Sum int64 `json:"sum"`
}

// Snapshot copies the histogram's current state (zero-value snapshot for
// a nil Histogram).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Reset zeroes all buckets and the sum.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the bound of the bucket containing the q-th observation. For
// the overflow bucket it returns the largest bound (or 0 with no
// bounds), which understates the tail — fixed buckets cannot do better.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Outcome is implemented by pipeline products that carry a pass/fail
// verdict (decoded packets with CRC results). Instrumented stages count
// them per label without importing the producing package.
type Outcome interface {
	// MetricOutcome returns a label (protocol family) and whether the
	// product verified.
	MetricOutcome() (label string, ok bool)
}
