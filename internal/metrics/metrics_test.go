package metrics

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotone: negative adds ignored
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("counter after reset = %d", got)
	}

	var g Gauge
	g.Set(9)
	g.SetMax(3)
	if got := g.Load(); got != 9 {
		t.Fatalf("gauge = %d, want 9 (SetMax must not lower)", got)
	}
	g.SetMax(12)
	if got := g.Load(); got != 12 {
		t.Fatalf("gauge = %d, want 12", got)
	}
}

func TestNilPrimitivesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	c.Reset()
	g.Set(1)
	g.SetMax(2)
	g.Reset()
	h.Observe(5)
	h.Reset()
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil primitives must read as zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil primitives")
	}
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10, 11, 100, 500, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{3, 2, 2, 2} // <=10, <=100, <=1000, overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 9 {
		t.Fatalf("count = %d, want 9", s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4, 8})
	for v := int64(1); v <= 8; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if q := s.Quantile(0); q != 1 {
		t.Errorf("p0 = %d, want 1", q)
	}
	if q := s.Quantile(0.5); q != 8 {
		// Observations 5..8 land in the <=8 bucket; the 4th (rank 4) is 5.
		t.Errorf("p50 = %d, want 8 (bucket upper bound)", q)
	}
	if q := s.Quantile(1); q != 8 {
		t.Errorf("p100 = %d, want 8", q)
	}
	if got := s.Mean(); got != 4.5 {
		t.Errorf("mean = %v, want 4.5", got)
	}
}

func TestRegistryReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity not stable")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("gauge identity not stable")
	}
	if r.Histogram("c", []int64{1}) != r.Histogram("c", nil) {
		t.Fatal("histogram identity not stable")
	}
}

// TestConcurrentHammer is the loss-freedom and monotonicity property
// test: many writers hammer one counter, one gauge and one histogram
// while a reader snapshots concurrently. Every intermediate snapshot
// must be monotone in the previous one, and the final snapshot (after
// all writers join) must be exact. Run under -race this also proves the
// primitives are data-race free.
func TestConcurrentHammer(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20_000
	)
	r := NewRegistry()
	c := r.Counter("hammer/count")
	g := r.Gauge("hammer/max")
	h := r.Histogram("hammer/lat", []int64{4, 16, 64, 256})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot reader asserting monotonicity.
	var prev Snapshot
	var readerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if prevC, ok := prev.Counters["hammer/count"]; ok {
				if s.Counters["hammer/count"] < prevC {
					readerErr = errNonMonotone("counter", s.Counters["hammer/count"], prevC)
					return
				}
			}
			ph := prev.Histograms["hammer/lat"]
			sh := s.Histograms["hammer/lat"]
			if sh.Count < ph.Count || sh.Sum < ph.Sum {
				readerErr = errNonMonotone("histogram", sh.Count, ph.Count)
				return
			}
			for i := range ph.Counts {
				if sh.Counts[i] < ph.Counts[i] {
					readerErr = errNonMonotone("bucket", sh.Counts[i], ph.Counts[i])
					return
				}
			}
			var total int64
			for _, n := range sh.Counts {
				total += n
			}
			if total != sh.Count {
				readerErr = errNonMonotone("count-vs-buckets", total, sh.Count)
				return
			}
			prev = s
		}
	}()

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				v := int64(w*perWriter + i)
				g.SetMax(v)
				h.Observe(v % 512)
			}
		}()
	}
	// Wait for writers only, then stop the reader.
	writersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(writersDone)
	}()
	// The reader goroutine is also counted in wg; close stop once the
	// writers are done by polling the counter instead.
	for c.Load() < writers*perWriter {
		runtime.Gosched()
	}
	close(stop)
	<-writersDone

	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("lost counter updates: %d of %d", got, writers*perWriter)
	}
	if got := g.Load(); got != writers*perWriter-1 {
		t.Fatalf("gauge watermark %d, want %d", got, writers*perWriter-1)
	}
	hs := r.Snapshot().Histograms["hammer/lat"]
	if hs.Count != writers*perWriter {
		t.Fatalf("lost histogram observations: %d of %d", hs.Count, writers*perWriter)
	}
	var total int64
	for _, n := range hs.Counts {
		total += n
	}
	if total != hs.Count {
		t.Fatalf("bucket total %d != count %d", total, hs.Count)
	}
}

type hammerErr struct {
	what     string
	got, old int64
}

func errNonMonotone(what string, got, old int64) error {
	return hammerErr{what, got, old}
}

func (e hammerErr) Error() string {
	return e.what + " went backwards"
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/count").Add(3)
	r.Gauge("a/level").Set(2)
	r.Histogram("a/lat", []int64{10}).Observe(7)
	s := r.Snapshot()

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a/count", "a/level", "a/lat", "count=1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a/count"] != 3 || back.Gauges["a/level"] != 2 {
		t.Fatalf("JSON roundtrip lost values: %+v", back)
	}
	if back.Histograms["a/lat"].Count != 1 {
		t.Fatalf("JSON roundtrip lost histogram: %+v", back.Histograms)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("y", []int64{5})
	c.Add(10)
	h.Observe(3)
	r.Reset()
	if c.Load() != 0 {
		t.Error("counter survived reset")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Errorf("histogram survived reset: %+v", s)
	}
	// Handles stay live after reset.
	c.Inc()
	if r.Snapshot().Counters["x"] != 1 {
		t.Error("handle dead after reset")
	}
}
