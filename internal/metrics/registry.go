package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry is a named collection of metrics. Registration (the first
// Counter/Gauge/Histogram call for a name) takes a mutex; instrumented
// code holds the returned primitive and updates it lock-free, so the
// map is off the hot path. A nil *Registry hands out nil primitives:
// the entire metrics layer can be disabled by passing nil.
//
// Metric names are slash-separated paths by convention:
// "flowgraph/<block>/busy_ns", "core/detector/<name>/accepts",
// "demod/<family>/crc_pass", "faults/injected/gap".
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a discarding counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds; pass nil to reuse).
// DefBucketsNs is used when bounds is empty at creation.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefBucketsNs
		}
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric, keeping registrations (and the
// primitives instrumented code already holds) intact.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// Snapshot is a point-in-time copy of a registry, ready for JSON
// encoding or text rendering.
type Snapshot struct {
	// Taken is the snapshot wall-clock time.
	Taken time.Time `json:"taken"`
	// Counters and Gauges map names to values.
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps names to bucket snapshots.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Taken: time.Now()}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteText renders the snapshot as sorted "name value" lines, with
// histograms summarized as count/mean/p50/p99.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch {
		case s.Counters != nil && hasKey(s.Counters, n):
			_, err = fmt.Fprintf(w, "%-48s %d\n", n, s.Counters[n])
		case s.Gauges != nil && hasKey(s.Gauges, n):
			_, err = fmt.Fprintf(w, "%-48s %d (gauge)\n", n, s.Gauges[n])
		default:
			h := s.Histograms[n]
			_, err = fmt.Fprintf(w, "%-48s count=%d mean=%.0f p50<=%d p99<=%d\n",
				n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON encodes the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

func hasKey(m map[string]int64, k string) bool {
	_, ok := m[k]
	return ok
}
