package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
)

// APIHandler returns the daemon's HTTP surface:
//
//	GET /api/streams     — every ingest stream with wire + pipeline counters
//	GET /api/detections  — recent fast-detector verdicts (?stream=, ?limit=)
//	GET /api/packets     — recent decoded packets, trace.PacketRecord schema
//	GET /api/waterfall   — spectrogram of a stream's recent samples
//	GET /api/live        — server-sent events feed (?types=detection,packet)
//	GET /api/metricz     — metrics registry snapshot (?format=text|json)
//	GET /api/protocols   — the protocol module registry: every registered
//	                       module with its detectors and capabilities
//	GET /healthz         — liveness: 503 while any active ingest stream
//	                       has been silent past the stall threshold
//	GET /readyz          — readiness: 503 once draining has begun
func (d *Daemon) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/streams", d.handleStreams)
	mux.HandleFunc("/api/detections", d.handleDetections)
	mux.HandleFunc("/api/packets", d.handlePackets)
	mux.HandleFunc("/api/waterfall", d.handleWaterfall)
	mux.HandleFunc("/api/live", d.handleLive)
	mux.HandleFunc("/api/protocols", d.handleProtocols)
	mux.Handle("/api/metricz", metrics.Handler(d.reg, d.refreshGauges))
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/readyz", d.handleReadyz)
	return mux
}

// healthResponse is the JSON body of /healthz and /readyz: ingest
// liveness, session counts, and the resilience ledger at a glance.
type healthResponse struct {
	Status        string      `json:"status"`
	Draining      bool        `json:"draining"`
	ActiveStreams int64       `json:"active_streams"`
	Connections   int64       `json:"connections"`
	Stalled       []StallInfo `json:"stalled,omitempty"`
	// Resilience counters: reconnects stitched, gap samples accounted,
	// slow SSE consumers evicted, idle-reaped ingest connections.
	Reconnects       int64 `json:"reconnects"`
	GapSamples       int64 `json:"gap_samples"`
	ConnsEvicted     int64 `json:"conns_evicted"`
	HeartbeatsMissed int64 `json:"heartbeats_missed"`
}

// health builds the shared health snapshot.
func (d *Daemon) health() healthResponse {
	resp := healthResponse{
		Status:           "ok",
		Draining:         d.draining.Load(),
		ActiveStreams:    d.hub.countActive(),
		Connections:      d.conns.Load(),
		Reconnects:       d.reg.Counter("wire/reconnects").Load(),
		GapSamples:       d.reg.Counter("wire/gap_samples").Load(),
		ConnsEvicted:     d.reg.Counter("server/conns_evicted").Load(),
		HeartbeatsMissed: d.hbMissed.Load(),
	}
	if d.opt.StallAfter > 0 {
		resp.Stalled = d.hub.Stalled(d.opt.StallAfter, time.Now())
	}
	return resp
}

// handleHealthz reports ingest liveness: 200 while every active stream
// has delivered a frame (heartbeats count) within the stall threshold,
// 503 the moment one goes silent past it. A reconnect that stitches the
// stream back brings it back to 200 — the probe an orchestrator should
// restart the daemon on, not the one it should route traffic by.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := d.health()
	code := http.StatusOK
	if len(resp.Stalled) > 0 {
		resp.Status = "stalled"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// handleReadyz reports readiness to take traffic: 503 once a drain has
// begun (existing sessions still flush, but new ingest is refused), 200
// otherwise.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := d.health()
	code := http.StatusOK
	if resp.Draining {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// protocolInfo is the JSON shape of one registered module.
type protocolInfo struct {
	Key          string             `json:"key"`
	Label        string             `json:"label"`
	Family       string             `json:"family"`
	Aliases      []string           `json:"aliases,omitempty"`
	Capabilities []string           `json:"capabilities"`
	Detectors    []protocolDetector `json:"detectors,omitempty"`
}

type protocolDetector struct {
	Name    string `json:"name"`
	Class   string `json:"class"`
	Default bool   `json:"default"`
}

// handleProtocols serves the module registry: which protocols this
// daemon knows, how each is detected, and what else it can do with
// them. A module registered out of tree appears here automatically.
func (d *Daemon) handleProtocols(w http.ResponseWriter, r *http.Request) {
	var out []protocolInfo
	for _, m := range protocols.Modules() {
		info := protocolInfo{
			Key:          m.Key,
			Label:        m.Label,
			Family:       m.ID.FamilyName(),
			Aliases:      m.Aliases,
			Capabilities: m.Capabilities(),
		}
		for _, s := range m.Detectors() {
			info.Detectors = append(info.Detectors, protocolDetector{
				Name: s.Name, Class: s.Class.String(), Default: s.Default,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, map[string]any{"protocols": out})
}

// writeJSON serves v with the standard headers.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// queryUint parses an optional numeric query parameter (0 when absent).
func queryUint(r *http.Request, key string) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

func (d *Daemon) handleStreams(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"streams": d.hub.Streams()})
}

func (d *Daemon) handleDetections(w http.ResponseWriter, r *http.Request) {
	stream, err := queryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := queryUint(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"detections": d.hub.Detections(stream, int(limit))})
}

func (d *Daemon) handlePackets(w http.ResponseWriter, r *http.Request) {
	stream, err := queryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := queryUint(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"packets": d.hub.Packets(stream, int(limit))})
}

// waterfallResponse is the JSON shape of /api/waterfall.
type waterfallResponse struct {
	Stream       uint64               `json:"stream"`
	TotalSamples int64                `json:"total_samples"`
	Waterfall    report.WaterfallData `json:"waterfall"`
}

func (d *Daemon) handleWaterfall(w http.ResponseWriter, r *http.Request) {
	id, err := queryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var (
		st *Stream
		ok bool
	)
	if id != 0 {
		st, ok = d.hub.Stream(id)
	} else {
		st, ok = d.hub.newestStream()
	}
	if !ok {
		http.Error(w, "no streams", http.StatusNotFound)
		return
	}
	if st.ring == nil {
		http.Error(w, "waterfall disabled", http.StatusNotFound)
		return
	}
	rows, err := queryUint(r, "rows")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols, err := queryUint(r, "cols")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if rows == 0 {
		rows = 16
	}
	if cols == 0 {
		cols = 48
	}
	samples := st.ring.Snapshot()
	data, ready := report.WaterfallGrid(samples, d.hub.clock.Rate, int(rows), int(cols))
	if !ready {
		http.Error(w, "stream too short for a waterfall", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "stream %d (%d samples seen)\n%s", st.ID(), st.ring.Total(), data.Render())
		return
	}
	writeJSON(w, waterfallResponse{Stream: st.ID(), TotalSamples: st.ring.Total(), Waterfall: data})
}

// handleLive is the SSE feed. Each subscriber gets a bounded queue; a
// client that stops reading loses events (and shows up in the dropped
// counters) instead of slowing ingest. Events are framed as
//
//	event: <type>
//	data: <Event JSON>
func (d *Daemon) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var types []string
	if t := r.URL.Query().Get("types"); t != "" {
		types = strings.Split(t, ",")
	}
	sub := d.hub.broker.Subscribe(types...)
	defer d.hub.broker.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, ": rfdumpd live feed\n\n")
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}
