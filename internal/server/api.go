package server

import (
	"fmt"
	"net/http"
	"time"

	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/serving"
)

// APIHandler returns the daemon's HTTP surface. The node-specific
// routes:
//
//	GET /api/streams     — every ingest stream with wire + pipeline counters
//	GET /api/detections  — recent fast-detector verdicts (?stream=, ?limit=)
//	GET /api/packets     — recent decoded packets, trace.PacketRecord schema
//	GET /api/waterfall   — spectrogram of a stream's recent samples
//	GET /api/protocols   — the protocol module registry: every registered
//	                       module with its detectors and capabilities
//
// plus the shared serving core (identical on rfdumpd and rfdumpc, so a
// fleet client — or a parent aggregator in a broker tree — cannot tell
// the tiers apart):
//
//	GET /api/live        — server-sent events feed (?types=detection,packet,
//	                       ?since=<seq> replays stored history first)
//	GET /api/history     — store kind, retention, bounds
//	GET /api/metricz     — metrics registry snapshot (?format=text|json)
//	GET /healthz         — liveness: 503 while any active ingest stream
//	                       has been silent past the stall threshold
//	GET /readyz          — readiness: 503 once draining has begun
//
// and the spectrum-DVR query surface (cursor pagination over the
// history store; per-host rate limited, 429 past the quota):
//
//	GET /api/streams/{id}/detections     — ?from=&to=&limit=&cursor=
//	GET /api/streams/{id}/packets        — same pagination
//	GET /api/streams/{id}/tiles          — persisted waterfall columns
//	GET /api/streams/{id}/snippets/{det} — captured IQ burst behind
//	                                       detection seq {det}; JSON with
//	                                       base64 IQ, or ?format=trace for
//	                                       RFDT bytes rfdump can replay
func (d *Daemon) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/streams", d.handleStreams)
	mux.HandleFunc("/api/detections", d.handleDetections)
	mux.HandleFunc("/api/packets", d.handlePackets)
	mux.HandleFunc("/api/waterfall", d.handleWaterfall)
	mux.HandleFunc("/api/protocols", d.handleProtocols)
	d.core().Register(mux)
	return mux
}

// core assembles the shared serving surface over the daemon's broker
// and history store. The node's ledger IS its store: live events are
// published under store sequence numbers, so the SSE catch-up replay
// and the live tail meet without duplicates.
func (d *Daemon) core() *serving.Core {
	return &serving.Core{
		Broker:      d.hub.broker,
		Ledger:      serving.StoreLedger{Store: d.hub.store},
		Store:       d.hub.store,
		Quota:       d.quota,
		Registry:    d.reg,
		Refresh:     d.refreshGauges,
		FeedComment: ": rfdumpd live feed",
		Health:      d.healthProbe,
		Ready:       d.readyProbe,
	}
}

// healthResponse is the JSON body of /healthz and /readyz: ingest
// liveness, session counts, and the resilience ledger at a glance.
type healthResponse struct {
	Status        string      `json:"status"`
	Draining      bool        `json:"draining"`
	ActiveStreams int64       `json:"active_streams"`
	Connections   int64       `json:"connections"`
	Stalled       []StallInfo `json:"stalled,omitempty"`
	// Resilience counters: reconnects stitched, gap samples accounted,
	// slow SSE consumers evicted, idle-reaped ingest connections.
	Reconnects       int64 `json:"reconnects"`
	GapSamples       int64 `json:"gap_samples"`
	ConnsEvicted     int64 `json:"conns_evicted"`
	HeartbeatsMissed int64 `json:"heartbeats_missed"`
}

// health builds the shared health snapshot.
func (d *Daemon) health() healthResponse {
	resp := healthResponse{
		Status:           "ok",
		Draining:         d.draining.Load(),
		ActiveStreams:    d.hub.countActive(),
		Connections:      d.conns.Load(),
		Reconnects:       d.reg.Counter("wire/reconnects").Load(),
		GapSamples:       d.reg.Counter("wire/gap_samples").Load(),
		ConnsEvicted:     d.reg.Counter("server/conns_evicted").Load(),
		HeartbeatsMissed: d.hbMissed.Load(),
	}
	if d.opt.StallAfter > 0 {
		resp.Stalled = d.hub.Stalled(d.opt.StallAfter, time.Now())
	}
	return resp
}

// healthProbe backs /healthz: not-ok (503) the moment any active
// stream has gone silent past the stall threshold. A reconnect that
// stitches the stream back brings it back to 200 — the probe an
// orchestrator should restart the daemon on, not the one it should
// route traffic by.
func (d *Daemon) healthProbe() (any, bool) {
	resp := d.health()
	if len(resp.Stalled) > 0 {
		resp.Status = "stalled"
		return resp, false
	}
	return resp, true
}

// readyProbe backs /readyz: not-ok (503) once a drain has begun
// (existing sessions still flush, but new ingest is refused).
func (d *Daemon) readyProbe() (any, bool) {
	resp := d.health()
	if resp.Draining {
		resp.Status = "draining"
		return resp, false
	}
	return resp, true
}

// protocolInfo is the JSON shape of one registered module.
type protocolInfo struct {
	Key          string             `json:"key"`
	Label        string             `json:"label"`
	Family       string             `json:"family"`
	Aliases      []string           `json:"aliases,omitempty"`
	Capabilities []string           `json:"capabilities"`
	Detectors    []protocolDetector `json:"detectors,omitempty"`
}

type protocolDetector struct {
	Name    string `json:"name"`
	Class   string `json:"class"`
	Default bool   `json:"default"`
}

// handleProtocols serves the module registry: which protocols this
// daemon knows, how each is detected, and what else it can do with
// them. A module registered out of tree appears here automatically.
func (d *Daemon) handleProtocols(w http.ResponseWriter, r *http.Request) {
	var out []protocolInfo
	for _, m := range protocols.Modules() {
		info := protocolInfo{
			Key:          m.Key,
			Label:        m.Label,
			Family:       m.ID.FamilyName(),
			Aliases:      m.Aliases,
			Capabilities: m.Capabilities(),
		}
		for _, s := range m.Detectors() {
			info.Detectors = append(info.Detectors, protocolDetector{
				Name: s.Name, Class: s.Class.String(), Default: s.Default,
			})
		}
		out = append(out, info)
	}
	serving.WriteJSON(w, map[string]any{"protocols": out})
}

func (d *Daemon) handleStreams(w http.ResponseWriter, r *http.Request) {
	serving.WriteJSON(w, map[string]any{"streams": d.hub.Streams()})
}

func (d *Daemon) handleDetections(w http.ResponseWriter, r *http.Request) {
	stream, err := serving.QueryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := serving.QueryUint(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	serving.WriteJSON(w, map[string]any{"detections": d.hub.Detections(stream, int(limit))})
}

func (d *Daemon) handlePackets(w http.ResponseWriter, r *http.Request) {
	stream, err := serving.QueryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := serving.QueryUint(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	serving.WriteJSON(w, map[string]any{"packets": d.hub.Packets(stream, int(limit))})
}

// waterfallResponse is the JSON shape of /api/waterfall.
type waterfallResponse struct {
	Stream       uint64               `json:"stream"`
	TotalSamples int64                `json:"total_samples"`
	Waterfall    report.WaterfallData `json:"waterfall"`
}

func (d *Daemon) handleWaterfall(w http.ResponseWriter, r *http.Request) {
	id, err := serving.QueryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var (
		st *Stream
		ok bool
	)
	if id != 0 {
		st, ok = d.hub.Stream(id)
	} else {
		st, ok = d.hub.newestStream()
	}
	if !ok {
		http.Error(w, "no streams", http.StatusNotFound)
		return
	}
	if st.ring == nil {
		http.Error(w, "waterfall disabled", http.StatusNotFound)
		return
	}
	rows, err := serving.QueryUint(r, "rows")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols, err := serving.QueryUint(r, "cols")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if rows == 0 {
		rows = 16
	}
	if cols == 0 {
		cols = 48
	}
	samples := st.ring.Snapshot()
	data, ready := report.WaterfallGrid(samples, d.hub.clock.Rate, int(rows), int(cols))
	if !ready {
		http.Error(w, "stream too short for a waterfall", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "stream %d (%d samples seen)\n%s", st.ID(), st.ring.Total(), data.Render())
		return
	}
	serving.WriteJSON(w, waterfallResponse{Stream: st.ID(), TotalSamples: st.ring.Total(), Waterfall: data})
}
