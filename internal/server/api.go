package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/trace"
)

// APIHandler returns the daemon's HTTP surface:
//
//	GET /api/streams     — every ingest stream with wire + pipeline counters
//	GET /api/detections  — recent fast-detector verdicts (?stream=, ?limit=)
//	GET /api/packets     — recent decoded packets, trace.PacketRecord schema
//	GET /api/waterfall   — spectrogram of a stream's recent samples
//	GET /api/live        — server-sent events feed (?types=detection,packet,
//	                       ?since=<seq> replays stored history first)
//	GET /api/metricz     — metrics registry snapshot (?format=text|json)
//	GET /api/protocols   — the protocol module registry: every registered
//	                       module with its detectors and capabilities
//	GET /healthz         — liveness: 503 while any active ingest stream
//	                       has been silent past the stall threshold
//	GET /readyz          — readiness: 503 once draining has begun
//
// The spectrum-DVR query surface (cursor pagination over the history
// store; per-host rate limited, 429 past the quota):
//
//	GET /api/streams/{id}/detections     — ?from=&to=&limit=&cursor=
//	GET /api/streams/{id}/packets        — same pagination
//	GET /api/streams/{id}/tiles          — persisted waterfall columns
//	GET /api/streams/{id}/snippets/{det} — captured IQ burst behind
//	                                       detection seq {det}; JSON with
//	                                       base64 IQ, or ?format=trace for
//	                                       RFDT bytes rfdump can replay
//	GET /api/history                     — store kind, retention, bounds
func (d *Daemon) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/streams", d.handleStreams)
	mux.HandleFunc("/api/detections", d.handleDetections)
	mux.HandleFunc("/api/packets", d.handlePackets)
	mux.HandleFunc("/api/waterfall", d.handleWaterfall)
	mux.HandleFunc("/api/live", d.handleLive)
	mux.HandleFunc("/api/protocols", d.handleProtocols)
	mux.Handle("/api/metricz", metrics.Handler(d.reg, d.refreshGauges))
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/readyz", d.handleReadyz)
	mux.HandleFunc("GET /api/streams/{id}/detections", d.quota.limit(d.handleStreamDetections))
	mux.HandleFunc("GET /api/streams/{id}/packets", d.quota.limit(d.handleStreamPackets))
	mux.HandleFunc("GET /api/streams/{id}/tiles", d.quota.limit(d.handleStreamTiles))
	mux.HandleFunc("GET /api/streams/{id}/snippets/{det}", d.quota.limit(d.handleSnippet))
	mux.HandleFunc("GET /api/history", d.handleHistory)
	return mux
}

// healthResponse is the JSON body of /healthz and /readyz: ingest
// liveness, session counts, and the resilience ledger at a glance.
type healthResponse struct {
	Status        string      `json:"status"`
	Draining      bool        `json:"draining"`
	ActiveStreams int64       `json:"active_streams"`
	Connections   int64       `json:"connections"`
	Stalled       []StallInfo `json:"stalled,omitempty"`
	// Resilience counters: reconnects stitched, gap samples accounted,
	// slow SSE consumers evicted, idle-reaped ingest connections.
	Reconnects       int64 `json:"reconnects"`
	GapSamples       int64 `json:"gap_samples"`
	ConnsEvicted     int64 `json:"conns_evicted"`
	HeartbeatsMissed int64 `json:"heartbeats_missed"`
}

// health builds the shared health snapshot.
func (d *Daemon) health() healthResponse {
	resp := healthResponse{
		Status:           "ok",
		Draining:         d.draining.Load(),
		ActiveStreams:    d.hub.countActive(),
		Connections:      d.conns.Load(),
		Reconnects:       d.reg.Counter("wire/reconnects").Load(),
		GapSamples:       d.reg.Counter("wire/gap_samples").Load(),
		ConnsEvicted:     d.reg.Counter("server/conns_evicted").Load(),
		HeartbeatsMissed: d.hbMissed.Load(),
	}
	if d.opt.StallAfter > 0 {
		resp.Stalled = d.hub.Stalled(d.opt.StallAfter, time.Now())
	}
	return resp
}

// handleHealthz reports ingest liveness: 200 while every active stream
// has delivered a frame (heartbeats count) within the stall threshold,
// 503 the moment one goes silent past it. A reconnect that stitches the
// stream back brings it back to 200 — the probe an orchestrator should
// restart the daemon on, not the one it should route traffic by.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := d.health()
	code := http.StatusOK
	if len(resp.Stalled) > 0 {
		resp.Status = "stalled"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// handleReadyz reports readiness to take traffic: 503 once a drain has
// begun (existing sessions still flush, but new ingest is refused), 200
// otherwise.
func (d *Daemon) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := d.health()
	code := http.StatusOK
	if resp.Draining {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// protocolInfo is the JSON shape of one registered module.
type protocolInfo struct {
	Key          string             `json:"key"`
	Label        string             `json:"label"`
	Family       string             `json:"family"`
	Aliases      []string           `json:"aliases,omitempty"`
	Capabilities []string           `json:"capabilities"`
	Detectors    []protocolDetector `json:"detectors,omitempty"`
}

type protocolDetector struct {
	Name    string `json:"name"`
	Class   string `json:"class"`
	Default bool   `json:"default"`
}

// handleProtocols serves the module registry: which protocols this
// daemon knows, how each is detected, and what else it can do with
// them. A module registered out of tree appears here automatically.
func (d *Daemon) handleProtocols(w http.ResponseWriter, r *http.Request) {
	var out []protocolInfo
	for _, m := range protocols.Modules() {
		info := protocolInfo{
			Key:          m.Key,
			Label:        m.Label,
			Family:       m.ID.FamilyName(),
			Aliases:      m.Aliases,
			Capabilities: m.Capabilities(),
		}
		for _, s := range m.Detectors() {
			info.Detectors = append(info.Detectors, protocolDetector{
				Name: s.Name, Class: s.Class.String(), Default: s.Default,
			})
		}
		out = append(out, info)
	}
	writeJSON(w, map[string]any{"protocols": out})
}

// writeJSON serves v with the standard headers.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// queryUint parses an optional numeric query parameter (0 when absent).
func queryUint(r *http.Request, key string) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

func (d *Daemon) handleStreams(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"streams": d.hub.Streams()})
}

func (d *Daemon) handleDetections(w http.ResponseWriter, r *http.Request) {
	stream, err := queryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := queryUint(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"detections": d.hub.Detections(stream, int(limit))})
}

func (d *Daemon) handlePackets(w http.ResponseWriter, r *http.Request) {
	stream, err := queryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	limit, err := queryUint(r, "limit")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{"packets": d.hub.Packets(stream, int(limit))})
}

// waterfallResponse is the JSON shape of /api/waterfall.
type waterfallResponse struct {
	Stream       uint64               `json:"stream"`
	TotalSamples int64                `json:"total_samples"`
	Waterfall    report.WaterfallData `json:"waterfall"`
}

func (d *Daemon) handleWaterfall(w http.ResponseWriter, r *http.Request) {
	id, err := queryUint(r, "stream")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var (
		st *Stream
		ok bool
	)
	if id != 0 {
		st, ok = d.hub.Stream(id)
	} else {
		st, ok = d.hub.newestStream()
	}
	if !ok {
		http.Error(w, "no streams", http.StatusNotFound)
		return
	}
	if st.ring == nil {
		http.Error(w, "waterfall disabled", http.StatusNotFound)
		return
	}
	rows, err := queryUint(r, "rows")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols, err := queryUint(r, "cols")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if rows == 0 {
		rows = 16
	}
	if cols == 0 {
		cols = 48
	}
	samples := st.ring.Snapshot()
	data, ready := report.WaterfallGrid(samples, d.hub.clock.Rate, int(rows), int(cols))
	if !ready {
		http.Error(w, "stream too short for a waterfall", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "stream %d (%d samples seen)\n%s", st.ID(), st.ring.Total(), data.Render())
		return
	}
	writeJSON(w, waterfallResponse{Stream: st.ID(), TotalSamples: st.ring.Total(), Waterfall: data})
}

// parseHistoryQuery reads the shared pagination parameters:
// ?from=/to= (seconds, half-open [from, to)), ?limit= (page size),
// ?cursor= (resume strictly after this sequence number).
func parseHistoryQuery(r *http.Request, stream uint64) (history.Query, error) {
	q := history.Query{Stream: stream}
	var err error
	if q.From, err = queryFloat(r, "from"); err != nil {
		return q, err
	}
	if q.To, err = queryFloat(r, "to"); err != nil {
		return q, err
	}
	limit, err := queryUint(r, "limit")
	if err != nil {
		return q, err
	}
	q.Limit = int(limit)
	if q.Cursor, err = queryUint(r, "cursor"); err != nil {
		return q, err
	}
	return q, nil
}

// queryFloat parses an optional float query parameter (0 when absent).
func queryFloat(r *http.Request, key string) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

// pathID parses the {id} wildcard (stream id; 0 = every stream).
func pathID(r *http.Request, name string) (uint64, error) {
	v, err := strconv.ParseUint(r.PathValue(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// pageResponse is the JSON envelope of every paginated history query:
// pass next_cursor back as ?cursor= while more is true and no record is
// ever served twice, even across retention eviction.
func writePage(w http.ResponseWriter, field string, recs any, next uint64, more bool) {
	writeJSON(w, map[string]any{field: recs, "next_cursor": next, "more": more})
}

func (d *Daemon) handleStreamDetections(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseHistoryQuery(r, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, next, more, err := d.hub.store.QueryDetections(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writePage(w, "detections", recs, next, more)
}

func (d *Daemon) handleStreamPackets(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseHistoryQuery(r, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, next, more, err := d.hub.store.QueryPackets(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writePage(w, "packets", recs, next, more)
}

func (d *Daemon) handleStreamTiles(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := parseHistoryQuery(r, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, next, more, err := d.hub.store.QueryTiles(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writePage(w, "tiles", recs, next, more)
}

// handleSnippet serves the captured IQ burst behind one detection:
// JSON (SnippetJSON, base64 IQ) by default, or ?format=trace for RFDT
// bytes — a file rfdump -r reads directly, closing the DVR loop.
func (d *Daemon) handleSnippet(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	det, err := pathID(r, "det")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snip, err := d.hub.store.Snippet(id, det)
	if errors.Is(err, history.ErrNotFound) {
		http.Error(w, "no snippet for that detection (not captured, or evicted)", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("format") == "trace" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="snippet-%d-%d.rfd"`, id, det))
		_ = trace.Write(w, snip.Rate, snip.IQ)
		return
	}
	writeJSON(w, snip.JSON())
}

// handleHistory serves the store's retention snapshot (kind, counts,
// bytes, segment count, sequence and time bounds).
func (d *Daemon) handleHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, d.hub.store.Stats())
}

// replayLimit bounds how much stored history one SSE ?since= catch-up
// replays before handing over to the live feed.
const replayLimit = 4096

// replaySince pages the store for detection and packet records with
// Seq > since and writes them as synthesized feed events, merged in
// sequence order. Returns the newest sequence replayed.
func (d *Daemon) replaySince(w http.ResponseWriter, since uint64, wants func(string) bool) uint64 {
	last := since
	var dets []DetectionRecord
	var pkts []PacketEvent
	if wants("detection") {
		dets = d.queryAllDetections(since)
	}
	if wants("packet") {
		pkts = d.queryAllPackets(since)
	}
	di, pi := 0, 0
	for di < len(dets) || pi < len(pkts) {
		var ev Event
		if pi >= len(pkts) || (di < len(dets) && dets[di].Seq < pkts[pi].Seq) {
			rec := dets[di]
			di++
			ev = Event{Seq: rec.Seq, Type: "detection", Stream: rec.Stream, Epoch: rec.Epoch, Detection: &rec}
		} else {
			pe := pkts[pi]
			pi++
			ev = Event{Seq: pe.Seq, Type: "packet", Stream: pe.Stream, Packet: &pe}
		}
		if data, err := json.Marshal(ev); err == nil {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		}
		if ev.Seq > last {
			last = ev.Seq
		}
	}
	return last
}

func (d *Daemon) queryAllDetections(since uint64) []DetectionRecord {
	var out []DetectionRecord
	cursor := since
	for len(out) < replayLimit {
		recs, next, more, err := d.hub.store.QueryDetections(history.Query{Cursor: cursor})
		if err != nil {
			break
		}
		out = append(out, recs...)
		cursor = next
		if !more {
			break
		}
	}
	return out
}

func (d *Daemon) queryAllPackets(since uint64) []PacketEvent {
	var out []PacketEvent
	cursor := since
	for len(out) < replayLimit {
		recs, next, more, err := d.hub.store.QueryPackets(history.Query{Cursor: cursor})
		if err != nil {
			break
		}
		out = append(out, recs...)
		cursor = next
		if !more {
			break
		}
	}
	return out
}

// handleLive is the SSE feed. Each subscriber gets a bounded queue; a
// client that stops reading loses events (and shows up in the dropped
// counters) instead of slowing ingest. Events are framed as
//
//	event: <type>
//	data: <Event JSON>
//
// ?since=<seq> replays stored detection/packet history strictly after
// that sequence number before switching to the live tail — a client
// that reconnects with the last seq it saw misses nothing the store
// retained. The subscription opens before the replay, and live events
// at or below the replay horizon are skipped, so the seam is
// duplicate-free.
func (d *Daemon) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var types []string
	if t := r.URL.Query().Get("types"); t != "" {
		types = strings.Split(t, ",")
	}
	since, err := queryUint(r, "since")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub := d.hub.broker.Subscribe(types...)
	defer d.hub.broker.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, ": rfdumpd live feed\n\n")

	var replayed uint64
	if r.URL.Query().Has("since") {
		replayed = d.replaySince(w, since, sub.wantsType)
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			if ev.Seq <= replayed {
				continue // already served by the catch-up replay
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}
