package server

import (
	"testing"

	"rfdump/internal/metrics"
)

func TestBrokerDropAndCount(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBroker(4, 0, reg)
	sub := b.Subscribe()
	for i := 1; i <= 20; i++ {
		b.Publish(Event{Seq: uint64(i), Type: "detection", Stream: 1})
	}
	if got := sub.Dropped(); got != 16 {
		t.Errorf("subscriber dropped %d, want 16", got)
	}
	if got := reg.Counter("server/sse/dropped_events").Load(); got != 16 {
		t.Errorf("registry dropped_events %d, want 16", got)
	}
	if got := reg.Counter("server/sse/events").Load(); got != 20 {
		t.Errorf("registry events %d, want 20", got)
	}
	// The queue kept the oldest events, in order.
	for want := uint64(1); want <= 4; want++ {
		ev := <-sub.Events()
		if ev.Seq != want {
			t.Errorf("queued seq %d, want %d", ev.Seq, want)
		}
	}
	select {
	case ev := <-sub.Events():
		t.Errorf("unexpected queued event %+v", ev)
	default:
	}
	b.Unsubscribe(sub)
}

func TestBrokerTypeFilter(t *testing.T) {
	b := NewBroker(8, 0, nil)
	sub := b.Subscribe("packet")
	b.Publish(Event{Seq: 1, Type: "detection"})
	b.Publish(Event{Seq: 2, Type: "packet"})
	b.Publish(Event{Seq: 3, Type: "stream-close"})
	ev := <-sub.Events()
	if ev.Type != "packet" || ev.Seq != 2 {
		t.Errorf("filtered event %+v", ev)
	}
	select {
	case ev := <-sub.Events():
		t.Errorf("filter leaked %+v", ev)
	default:
	}
	if got := sub.Dropped(); got != 0 {
		t.Errorf("filtered events counted as drops: %d", got)
	}
	b.Unsubscribe(sub)
}

func TestBrokerUnsubscribeClosesQueue(t *testing.T) {
	b := NewBroker(2, 0, nil)
	sub := b.Subscribe()
	b.Unsubscribe(sub)
	if _, open := <-sub.Events(); open {
		t.Error("channel still open after unsubscribe")
	}
	// Idempotent, and publishing after unsubscribe is harmless.
	b.Unsubscribe(sub)
	b.Publish(Event{Seq: 1, Type: "detection"})
}

func TestSampleRingWraparound(t *testing.T) {
	r := newSampleRing(300)
	feed := func(base, n int) {
		s := make([]complex64, n)
		for i := range s {
			s[i] = complex(float32(base+i), 0)
		}
		r.Append(s)
	}
	feed(0, 250)
	feed(250, 120) // total 370: ring holds 70..369
	got := r.Snapshot()
	if len(got) != 300 {
		t.Fatalf("snapshot len %d, want 300", len(got))
	}
	for i, v := range got {
		if real(v) != float32(70+i) {
			t.Fatalf("snapshot[%d] = %v, want %d", i, v, 70+i)
		}
	}
	if r.Total() != 370 {
		t.Errorf("total %d, want 370", r.Total())
	}
	// An append larger than the ring keeps only the newest samples.
	feed(1000, 900)
	got = r.Snapshot()
	if len(got) != 300 || real(got[0]) != 1600 || real(got[299]) != 1899 {
		t.Errorf("oversized append: len=%d first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
}

func TestRingSnapshotOrder(t *testing.T) {
	r := newRing[int](3)
	for i := 1; i <= 5; i++ {
		r.add(i)
	}
	got := r.snapshot()
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Errorf("snapshot %v, want [3 4 5]", got)
	}
}
