package server

import (
	"testing"

	"rfdump/internal/iq"
	"rfdump/internal/metrics"
)

// TestProtocolsEndpoint locks the /api/protocols surface: every
// registered module is served with its key, label, family, detector
// table and capability list, exactly as the registry reports them.
func TestProtocolsEndpoint(t *testing.T) {
	clock := iq.NewClock(0)
	_, _, ts := newTestDaemon(t, clock, metrics.NewRegistry(), Options{})

	var body struct {
		Protocols []protocolInfo `json:"protocols"`
	}
	getJSON(t, ts.URL+"/api/protocols", &body)

	byKey := map[string]protocolInfo{}
	for _, p := range body.Protocols {
		byKey[p.Key] = p
	}
	for _, key := range []string{"wifi", "bt", "wifig", "zigbee", "microwave"} {
		if _, ok := byKey[key]; !ok {
			t.Errorf("/api/protocols missing module %q (have %d entries)", key, len(body.Protocols))
		}
	}

	wifi := byKey["wifi"]
	if wifi.Label != "802.11b" || wifi.Family != "802.11b" {
		t.Errorf("wifi label/family = %q/%q", wifi.Label, wifi.Family)
	}
	caps := map[string]bool{}
	for _, c := range wifi.Capabilities {
		caps[c] = true
	}
	for _, want := range []string{"detect", "analyze", "modulate", "traffic"} {
		if !caps[want] {
			t.Errorf("wifi capabilities %v missing %q", wifi.Capabilities, want)
		}
	}
	dets := map[string]protocolDetector{}
	for _, d := range wifi.Detectors {
		dets[d.Name] = d
	}
	if d, ok := dets["802.11-timing"]; !ok || d.Class != "timing" || !d.Default {
		t.Errorf("wifi detectors wrong: %+v", wifi.Detectors)
	}
	if d, ok := dets["802.11-phase"]; !ok || d.Class != "phase" {
		t.Errorf("wifi phase detector wrong: %+v", wifi.Detectors)
	}

	bt := byKey["bt"]
	hasAlias := false
	for _, a := range bt.Aliases {
		if a == "bluetooth" {
			hasAlias = true
		}
	}
	if !hasAlias {
		t.Errorf("bt aliases %v missing \"bluetooth\"", bt.Aliases)
	}
	if len(bt.Detectors) != 3 {
		t.Errorf("bt has %d detectors, want 3", len(bt.Detectors))
	}
}
