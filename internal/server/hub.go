package server

import (
	"sync"
	"sync/atomic"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/trace"
	"rfdump/internal/wire"
)

// Hub is the daemon's shared state: the registry of ingest streams, the
// recent-history rings the REST API reads, and the broker the live feed
// publishes through. All mutating entry points are called from pipeline
// callbacks on session goroutines, so everything is either ring-guarded
// by the hub mutex or atomic.
type Hub struct {
	clock  iq.Clock
	broker *Broker
	seq    atomic.Uint64 // event sequence allocator

	mu         sync.Mutex
	streams    map[uint64]*Stream
	order      []uint64 // registration order, oldest first
	nextID     uint64
	detections *ring[DetectionRecord]
	packets    *ring[PacketEvent]

	detCount *metrics.Counter
	pktCount *metrics.Counter
	opened   *metrics.Counter
	active   *metrics.Gauge
}

// HubConfig sizes the hub.
type HubConfig struct {
	// Clock converts sample spans to seconds in records.
	Clock iq.Clock
	// DetectionRing / PacketRing bound the REST history (defaults 4096
	// and 2048).
	DetectionRing int
	PacketRing    int
	// SubscriberQueue bounds each live-feed subscriber (default 256).
	SubscriberQueue int
	// Registry receives hub and broker counters; may be nil.
	Registry *metrics.Registry
}

// NewHub builds the hub and its broker.
func NewHub(cfg HubConfig) *Hub {
	if cfg.DetectionRing <= 0 {
		cfg.DetectionRing = 4096
	}
	if cfg.PacketRing <= 0 {
		cfg.PacketRing = 2048
	}
	if cfg.SubscriberQueue <= 0 {
		cfg.SubscriberQueue = 256
	}
	return &Hub{
		clock:      cfg.Clock,
		broker:     NewBroker(cfg.SubscriberQueue, cfg.Registry),
		streams:    make(map[uint64]*Stream),
		detections: newRing[DetectionRecord](cfg.DetectionRing),
		packets:    newRing[PacketEvent](cfg.PacketRing),
		detCount:   cfg.Registry.Counter("server/detections"),
		pktCount:   cfg.Registry.Counter("server/packets"),
		opened:     cfg.Registry.Counter("server/streams/opened"),
		active:     cfg.Registry.Gauge("server/streams/active"),
	}
}

// Broker returns the live-feed broker (Subscribe/Unsubscribe).
func (h *Hub) Broker() *Broker { return h.broker }

// Clock returns the hub's sample clock.
func (h *Hub) Clock() iq.Clock { return h.clock }

// Stream is one ingest connection's state in the hub.
type Stream struct {
	hub     *Hub
	id      uint64
	remote  string
	meta    wire.StreamMeta
	started time.Time
	counts  func() wire.Counts // wire-level counters, nil once detached
	ring    *sampleRing        // recent samples for the waterfall

	mu       sync.Mutex
	active   bool
	session  uint64
	endErr   string
	degraded string
	endWire  wire.Counts

	detections atomic.Int64
	packets    atomic.Int64
}

// ID returns the hub-assigned stream id.
func (s *Stream) ID() uint64 { return s.id }

// StreamInfo is the JSON shape of one stream in /api/streams.
type StreamInfo struct {
	ID         uint64          `json:"id"`
	Session    uint64          `json:"session,omitempty"`
	Remote     string          `json:"remote"`
	Meta       wire.StreamMeta `json:"meta"`
	StartedS   float64         `json:"uptime_s"`
	Active     bool            `json:"active"`
	Error      string          `json:"error,omitempty"`
	Degraded   string          `json:"degraded,omitempty"`
	Wire       wire.Counts     `json:"wire"`
	Detections int64           `json:"detections"`
	Packets    int64           `json:"packets"`
}

// info snapshots the stream.
func (s *Stream) info(now time.Time) StreamInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	inf := StreamInfo{
		ID:         s.id,
		Session:    s.session,
		Remote:     s.remote,
		Meta:       s.meta,
		StartedS:   now.Sub(s.started).Seconds(),
		Active:     s.active,
		Error:      s.endErr,
		Degraded:   s.degraded,
		Wire:       s.endWire,
		Detections: s.detections.Load(),
		Packets:    s.packets.Load(),
	}
	if s.active && s.counts != nil {
		inf.Wire = s.counts()
	}
	return inf
}

// OpenStream registers a new ingest stream. counts is polled for live
// wire statistics (the decoder's atomic snapshot); waterfallSamples
// sizes the stream's recent-sample ring (0 disables the waterfall).
func (h *Hub) OpenStream(remote string, meta wire.StreamMeta, counts func() wire.Counts, waterfallSamples int) *Stream {
	st := &Stream{
		hub:     h,
		remote:  remote,
		meta:    meta,
		started: time.Now(),
		counts:  counts,
	}
	if waterfallSamples > 0 {
		st.ring = newSampleRing(waterfallSamples)
	}
	h.mu.Lock()
	h.nextID++
	st.id = h.nextID
	h.streams[st.id] = st
	h.order = append(h.order, st.id)
	h.pruneLocked()
	h.mu.Unlock()
	h.opened.Inc()
	return st
}

// endedRetention is how many ended streams the registry keeps for
// post-mortem queries before the oldest are pruned.
const endedRetention = 64

// pruneLocked drops the oldest ended streams past the retention bound.
func (h *Hub) pruneLocked() {
	ended := 0
	for _, id := range h.order {
		st := h.streams[id]
		st.mu.Lock()
		if !st.active && st.session != 0 {
			ended++
		}
		st.mu.Unlock()
	}
	for ended > endedRetention {
		for i, id := range h.order {
			st := h.streams[id]
			st.mu.Lock()
			done := !st.active && st.session != 0
			st.mu.Unlock()
			if done {
				delete(h.streams, id)
				h.order = append(h.order[:i], h.order[i+1:]...)
				ended--
				break
			}
		}
	}
}

// SessionStarted marks the stream live (wired to core's OnSessionStart)
// and announces it on the feed.
func (h *Hub) SessionStarted(st *Stream, session uint64) {
	st.mu.Lock()
	st.active = true
	st.session = session
	st.mu.Unlock()
	h.active.Set(h.countActive())
	h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "stream-open", Stream: st.id})
}

// SessionEnded marks the stream done (wired to core's OnSessionEnd),
// freezes its wire counters, records degradation, and announces the
// close. res and err may both describe failure modes; a nil res with a
// nil err means the session never started (e.g. NewSession failed).
func (h *Hub) SessionEnded(st *Stream, res *core.Result, err error) {
	st.mu.Lock()
	st.active = false
	if st.session == 0 {
		st.session = ^uint64(0) // never ran; mark terminal for pruning
	}
	if err != nil {
		st.endErr = err.Error()
	}
	if res != nil && res.Degradation.Any() {
		st.degraded = res.Degradation.String()
	}
	if st.counts != nil {
		st.endWire = st.counts()
		st.counts = nil
	}
	errStr := st.endErr
	st.mu.Unlock()
	h.active.Set(h.countActive())
	h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "stream-close", Stream: st.id, Error: errStr})
}

// countActive recounts live streams under the hub lock.
func (h *Hub) countActive() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, st := range h.streams {
		st.mu.Lock()
		if st.active {
			n++
		}
		st.mu.Unlock()
	}
	return n
}

// Detection records one fast-detector verdict: ring history for the
// REST API, counters, and a live event. Runs on the session's dispatch
// goroutine; must not block.
func (h *Hub) Detection(st *Stream, d core.Detection) {
	rec := DetectionRecord{
		Stream:     st.id,
		TimeS:      float64(d.Span.Start) / float64(h.clock.Rate),
		Family:     d.Family.FamilyName(),
		Detector:   d.Detector,
		Start:      int64(d.Span.Start),
		End:        int64(d.Span.End),
		Confidence: d.Confidence,
		Channel:    d.Channel,
	}
	st.detections.Add(1)
	h.detCount.Inc()
	h.mu.Lock()
	h.detections.add(rec)
	h.mu.Unlock()
	h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "detection", Stream: st.id, Detection: &rec})
}

// Packet records one decoded packet, reusing the offline packet-log
// record as the single packet schema.
func (h *Hub) Packet(st *Stream, p demod.Packet) {
	ev := PacketEvent{Stream: st.id, PacketRecord: trace.NewPacketRecord(h.clock, p)}
	st.packets.Add(1)
	h.pktCount.Inc()
	h.mu.Lock()
	h.packets.add(ev)
	h.mu.Unlock()
	h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "packet", Stream: st.id, Packet: &ev})
}

// Streams snapshots every registered stream, oldest first.
func (h *Hub) Streams() []StreamInfo {
	now := time.Now()
	h.mu.Lock()
	sts := make([]*Stream, 0, len(h.order))
	for _, id := range h.order {
		sts = append(sts, h.streams[id])
	}
	h.mu.Unlock()
	out := make([]StreamInfo, len(sts))
	for i, st := range sts {
		out[i] = st.info(now)
	}
	return out
}

// Stream returns a registered stream by id.
func (h *Hub) Stream(id uint64) (*Stream, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[id]
	return st, ok
}

// newestStream returns the most recently opened stream, preferring an
// active one (the default target for /api/waterfall).
func (h *Hub) newestStream() (*Stream, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var fallback *Stream
	for i := len(h.order) - 1; i >= 0; i-- {
		st := h.streams[h.order[i]]
		if fallback == nil {
			fallback = st
		}
		st.mu.Lock()
		act := st.active
		st.mu.Unlock()
		if act {
			return st, true
		}
	}
	return fallback, fallback != nil
}

// Detections returns up to limit newest detection records (0 = all),
// optionally filtered to one stream id (0 = all streams).
func (h *Hub) Detections(stream uint64, limit int) []DetectionRecord {
	h.mu.Lock()
	all := h.detections.snapshot()
	h.mu.Unlock()
	return filterTail(all, limit, func(r DetectionRecord) bool {
		return stream == 0 || r.Stream == stream
	})
}

// Packets returns up to limit newest packet events, as Detections.
func (h *Hub) Packets(stream uint64, limit int) []PacketEvent {
	h.mu.Lock()
	all := h.packets.snapshot()
	h.mu.Unlock()
	return filterTail(all, limit, func(e PacketEvent) bool {
		return stream == 0 || e.Stream == stream
	})
}

// filterTail keeps matching entries, then the newest limit of them.
func filterTail[T any](in []T, limit int, keep func(T) bool) []T {
	out := in[:0]
	for _, v := range in {
		if keep(v) {
			out = append(out, v)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	// Copy so callers never alias the ring snapshot's backing array.
	res := make([]T, len(out))
	copy(res, out)
	return res
}

// ring is a fixed-capacity overwrite-oldest buffer (hub-lock guarded).
type ring[T any] struct {
	buf  []T
	next int
	full bool
}

func newRing[T any](n int) *ring[T] {
	if n < 1 {
		n = 1
	}
	return &ring[T]{buf: make([]T, n)}
}

func (r *ring[T]) add(v T) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the contents oldest-first.
func (r *ring[T]) snapshot() []T {
	if !r.full {
		out := make([]T, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// sampleRing keeps the most recent capacity samples of a stream for the
// waterfall endpoint. Appends run on the ingest goroutine between block
// reads, so the copy must stay cheap; snapshots run on API goroutines.
type sampleRing struct {
	mu    sync.Mutex
	buf   iq.Samples
	n     int // valid samples
	next  int // write cursor
	total int64
}

func newSampleRing(capacity int) *sampleRing {
	if capacity < iq.ChunkSamples {
		capacity = iq.ChunkSamples
	}
	return &sampleRing{buf: make(iq.Samples, capacity)}
}

// Append adds the next span of the stream, overwriting the oldest.
func (r *sampleRing) Append(s iq.Samples) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total += int64(len(s))
	if len(s) >= len(r.buf) {
		copy(r.buf, s[len(s)-len(r.buf):])
		r.next = 0
		r.n = len(r.buf)
		return
	}
	k := copy(r.buf[r.next:], s)
	if k < len(s) {
		copy(r.buf, s[k:])
	}
	r.next = (r.next + len(s)) % len(r.buf)
	if r.n < len(r.buf) {
		r.n += len(s)
		if r.n > len(r.buf) {
			r.n = len(r.buf)
		}
	}
}

// Snapshot copies out the retained samples, oldest first.
func (r *sampleRing) Snapshot() iq.Samples {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(iq.Samples, r.n)
	if r.n < len(r.buf) {
		copy(out, r.buf[:r.n])
		return out
	}
	k := copy(out, r.buf[r.next:])
	copy(out[k:], r.buf[:r.next])
	return out
}

// Total returns how many samples have passed through the ring.
func (r *sampleRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
