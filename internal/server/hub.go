package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/history"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/trace"
	"rfdump/internal/wire"
)

// Hub is the daemon's shared state: the registry of ingest streams, the
// history store the REST API reads, and the broker the live feed
// publishes through. All mutating entry points are called from pipeline
// callbacks on session goroutines, so everything is guarded by the hub
// mutex, atomic, or delegated to the (concurrency-safe) store.
type Hub struct {
	clock  iq.Clock
	broker *Broker
	store  history.Store
	seq    atomic.Uint64 // event + record sequence allocator

	mu      sync.Mutex
	streams map[uint64]*Stream
	order   []uint64 // registration order, oldest first
	nextID  uint64

	detCount   *metrics.Counter
	pktCount   *metrics.Counter
	opened     *metrics.Counter
	active     *metrics.Gauge
	reconnects *metrics.Counter
	gapFrames  *metrics.Counter
	gapSamples *metrics.Counter
	storeErrs  *metrics.Counter
}

// HubConfig sizes the hub.
type HubConfig struct {
	// Clock converts sample spans to seconds in records.
	Clock iq.Clock
	// Store persists detections, packets, tiles and IQ snippets. Nil
	// builds the default bounded in-memory store sized by DetectionRing
	// and PacketRing (the legacy rings, behind the history.Store
	// interface). The hub owns the store and closes it in Close.
	Store history.Store
	// DetectionRing / PacketRing bound the default in-memory history
	// (defaults 4096 and 2048; negative is rejected; ignored when Store
	// is set).
	DetectionRing int
	PacketRing    int
	// SubscriberQueue bounds each live-feed subscriber (default 256);
	// EvictAfter is the consecutive-drop budget before a subscriber is
	// evicted (default 4× the queue; negative disables).
	SubscriberQueue int
	EvictAfter      int
	// Registry receives hub and broker counters; may be nil.
	Registry *metrics.Registry
}

// NewHub builds the hub and its broker. A negative ring size is a
// configuration bug and is rejected loudly rather than silently
// defaulted.
func NewHub(cfg HubConfig) (*Hub, error) {
	if cfg.DetectionRing < 0 || cfg.PacketRing < 0 {
		return nil, fmt.Errorf("server: negative history ring size (detections %d, packets %d)",
			cfg.DetectionRing, cfg.PacketRing)
	}
	if cfg.DetectionRing == 0 {
		cfg.DetectionRing = 4096
	}
	if cfg.PacketRing == 0 {
		cfg.PacketRing = 2048
	}
	if cfg.SubscriberQueue <= 0 {
		cfg.SubscriberQueue = 256
	}
	if cfg.EvictAfter == 0 {
		cfg.EvictAfter = 4 * cfg.SubscriberQueue
	}
	if cfg.EvictAfter < 0 {
		cfg.EvictAfter = 0
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = history.NewMemory(history.MemoryConfig{
			DetectionCap: cfg.DetectionRing,
			PacketCap:    cfg.PacketRing,
			Registry:     cfg.Registry,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	h := &Hub{
		clock:      cfg.Clock,
		broker:     NewBroker(cfg.SubscriberQueue, cfg.EvictAfter, cfg.Registry),
		store:      store,
		streams:    make(map[uint64]*Stream),
		detCount:   cfg.Registry.Counter("server/detections"),
		pktCount:   cfg.Registry.Counter("server/packets"),
		opened:     cfg.Registry.Counter("server/streams/opened"),
		active:     cfg.Registry.Gauge("server/streams/active"),
		reconnects: cfg.Registry.Counter("wire/reconnects"),
		gapFrames:  cfg.Registry.Counter("wire/gap_frames"),
		gapSamples: cfg.Registry.Counter("wire/gap_samples"),
		storeErrs:  cfg.Registry.Counter("server/history/errors"),
	}
	// Seed the event allocator past everything the store already holds,
	// so a daemon restarting over a disk store keeps sequence numbers
	// strictly increasing across its whole history.
	h.seq.Store(store.LastSeq())
	return h, nil
}

// Broker returns the live-feed broker (Subscribe/Unsubscribe).
func (h *Hub) Broker() *Broker { return h.broker }

// Store returns the hub's history store (the query API reads it
// directly).
func (h *Hub) Store() history.Store { return h.store }

// Close releases the history store (segment stores flush and close
// their files). The hub stays usable for stream accounting; appends to
// the store after Close fail and are counted, not fatal.
func (h *Hub) Close() error { return h.store.Close() }

// Clock returns the hub's sample clock.
func (h *Hub) Clock() iq.Clock { return h.clock }

// epoch is one ingest connection's tenure on a stream. A stream that
// never loses its link has exactly one; a reconnecting transmitter
// stitches a new epoch on with a resume frame, and the ledger in that
// frame is what prices the gap between them.
type epoch struct {
	num     uint32
	remote  string
	started time.Time
	// resume is the reconnect handshake that opened this epoch (nil for
	// a fresh first connection).
	resume *wire.ResumeInfo
	// counts/lastFrame poll the live connection; detach kicks it (used
	// when a resume supersedes a half-open predecessor). counts is nil
	// once the epoch ends (final holds the frozen snapshot).
	counts    func() wire.Counts
	lastFrame func() time.Time
	detach    func()
	final     wire.Counts

	active   bool
	done     bool
	session  uint64
	endErr   string
	degraded string
}

// countsNow returns the epoch's wire accounting, live or frozen.
func (e *epoch) countsNow() wire.Counts {
	if e.counts != nil {
		return e.counts()
	}
	return e.final
}

// Stream is one logical ingest stream in the hub: a sequence of epochs
// (connections) carrying the same transmitter, with gap accounting
// between them.
type Stream struct {
	hub     *Hub
	id      uint64
	meta    wire.StreamMeta
	started time.Time
	ring    *sampleRing // recent samples for the waterfall

	mu     sync.Mutex
	epochs []*epoch

	// absBase is the stream-timeline offset of the current epoch's
	// first sample; curEpoch its number. Read by Detection on dispatch
	// goroutines to stamp absolute spans.
	absBase  atomic.Int64
	curEpoch atomic.Uint32

	detections atomic.Int64
	packets    atomic.Int64
}

// ID returns the hub-assigned stream id.
func (s *Stream) ID() uint64 { return s.id }

// GapRecord prices one outage: the samples and frames of the stream
// timeline that entered no session — in-flight loss on the dead
// connection plus payload the client shed while down (the Dropped*
// subset). It mirrors the Degradation record the pipeline keeps for
// shed load: nothing is silently lost, everything is priced.
type GapRecord struct {
	// Epoch is the connection whose resume handshake closed the gap;
	// AtSample is where on the stream timeline the gap begins.
	Epoch    uint32 `json:"epoch"`
	AtSample int64  `json:"at_sample"`
	Frames   int64  `json:"frames"`
	Samples  int64  `json:"samples"`
	// DroppedFrames/DroppedSamples is the client-shed subset of the
	// totals above.
	DroppedFrames  int64 `json:"dropped_frames,omitempty"`
	DroppedSamples int64 `json:"dropped_samples,omitempty"`
}

// EpochInfo is the JSON shape of one epoch in StreamInfo.
type EpochInfo struct {
	Epoch       uint32 `json:"epoch"`
	Remote      string `json:"remote"`
	StartOffset int64  `json:"start_offset"`
	Frames      int64  `json:"frames"`
	Samples     int64  `json:"samples"`
	Active      bool   `json:"active"`
	Error       string `json:"error,omitempty"`
}

// StreamInfo is the JSON shape of one stream in /api/streams. Wire
// aggregates the decoder counters across every epoch; Session, Active,
// Error and Degraded describe the newest epoch.
type StreamInfo struct {
	ID         uint64          `json:"id"`
	Session    uint64          `json:"session,omitempty"`
	Remote     string          `json:"remote"`
	Meta       wire.StreamMeta `json:"meta"`
	StartedS   float64         `json:"uptime_s"`
	Active     bool            `json:"active"`
	Error      string          `json:"error,omitempty"`
	Degraded   string          `json:"degraded,omitempty"`
	Wire       wire.Counts     `json:"wire"`
	Detections int64           `json:"detections"`
	Packets    int64           `json:"packets"`
	// Epoch is the current connection number; Reconnects how many
	// resumes stitched the stream back together.
	Epoch      uint32 `json:"epoch"`
	Reconnects int64  `json:"reconnects"`
	// SilentS is how long the active connection has delivered no frame
	// (heartbeats count as frames); 0 when inactive.
	SilentS float64 `json:"silent_s,omitempty"`
	// GapFrames/GapSamples total the accounted outage cost; Gaps
	// itemizes it per reconnect.
	GapFrames  int64       `json:"gap_frames,omitempty"`
	GapSamples int64       `json:"gap_samples,omitempty"`
	Gaps       []GapRecord `json:"gaps,omitempty"`
	Epochs     []EpochInfo `json:"epochs,omitempty"`
}

// info snapshots the stream.
func (s *Stream) info(now time.Time) StreamInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	inf := StreamInfo{
		ID:         s.id,
		Meta:       s.meta,
		StartedS:   now.Sub(s.started).Seconds(),
		Detections: s.detections.Load(),
		Packets:    s.packets.Load(),
	}
	if n := len(s.epochs); n > 0 {
		last := s.epochs[n-1]
		inf.Session = last.session
		inf.Remote = last.remote
		inf.Active = last.active
		inf.Error = last.endErr
		inf.Degraded = last.degraded
		inf.Epoch = last.num
		inf.Reconnects = int64(n - 1)
		if last.active {
			inf.SilentS = now.Sub(s.lastFrameLocked(last)).Seconds()
		}
	}
	inf.Wire = s.wireLocked()
	inf.Gaps = s.gapsLocked()
	for _, g := range inf.Gaps {
		inf.GapFrames += g.Frames
		inf.GapSamples += g.Samples
	}
	for _, ep := range s.epochs {
		c := ep.countsNow()
		ei := EpochInfo{
			Epoch:  ep.num,
			Remote: ep.remote,
			Frames: c.Frames, Samples: c.Samples,
			Active: ep.active,
			Error:  ep.endErr,
		}
		if ep.resume != nil {
			ei.StartOffset = ep.resume.Offset()
		}
		inf.Epochs = append(inf.Epochs, ei)
	}
	return inf
}

// lastFrameLocked returns the epoch's liveness clock: last valid frame,
// falling back to the epoch's start before any frame arrived.
func (s *Stream) lastFrameLocked(ep *epoch) time.Time {
	if ep.lastFrame != nil {
		if t := ep.lastFrame(); !t.IsZero() {
			return t
		}
	}
	return ep.started
}

// wireLocked aggregates decoder counters across epochs. CleanEnd is the
// newest epoch's: a stream is cleanly ended iff its last connection
// was.
func (s *Stream) wireLocked() wire.Counts {
	var w wire.Counts
	for i, ep := range s.epochs {
		c := ep.countsNow()
		w.Frames += c.Frames
		w.Samples += c.Samples
		w.Heartbeats += c.Heartbeats
		w.ResyncBytes += c.ResyncBytes
		w.BadFrames += c.BadFrames
		w.SeqGaps += c.SeqGaps
		if i == len(s.epochs)-1 {
			w.CleanEnd = c.CleanEnd
		}
	}
	return w
}

// gapsLocked prices every reconnect from the resume ledgers: the gap a
// resume closes is (everything the client sent before this epoch) minus
// (everything sessions actually received before it), plus whatever the
// client shed while down. Computed lazily from live counters, so it is
// exact once the prior epoch has drained.
func (s *Stream) gapsLocked() []GapRecord {
	var out []GapRecord
	// accFrames/accSamples is everything accounted for before the epoch
	// at hand: delivered by earlier sessions plus in-flight loss already
	// priced by earlier resumes. Charging each resume against the
	// accounted total (not delivery alone) keeps a gap from being billed
	// again by every later reconnect.
	var accFrames, accSamples int64
	var prevDropF, prevDropS uint64
	for _, ep := range s.epochs {
		if r := ep.resume; r != nil {
			gf := int64(r.SentFrames) - accFrames
			if gf < 0 {
				gf = 0
			}
			gs := int64(r.SentSamples) - accSamples
			if gs < 0 {
				gs = 0
			}
			accFrames += gf
			accSamples += gs
			df := int64(r.DroppedFrames - prevDropF)
			ds := int64(r.DroppedSamples - prevDropS)
			g := GapRecord{
				Epoch:  ep.num,
				Frames: gf + df, Samples: gs + ds,
				DroppedFrames: df, DroppedSamples: ds,
			}
			g.AtSample = r.Offset() - g.Samples
			if g.Frames > 0 || g.Samples > 0 {
				out = append(out, g)
			}
			prevDropF, prevDropS = r.DroppedFrames, r.DroppedSamples
		}
		c := ep.countsNow()
		accFrames += c.Frames
		accSamples += c.Samples
	}
	return out
}

// activeLocked reports whether the stream's newest epoch has a live
// session.
func (s *Stream) activeLocked() bool {
	n := len(s.epochs)
	return n > 0 && s.epochs[n-1].active
}

// doneLocked reports whether every epoch has ended (prune eligibility).
func (s *Stream) doneLocked() bool {
	if len(s.epochs) == 0 {
		return false
	}
	for _, ep := range s.epochs {
		if !ep.done {
			return false
		}
	}
	return true
}

// AttachSpec describes one ingest connection arriving at the hub.
type AttachSpec struct {
	Remote string
	Meta   wire.StreamMeta
	// Resume is the connection's reconnect handshake, nil for a fresh
	// stream. A resume attaches to the newest stream carrying the same
	// wire StreamID; if none exists (daemon restart), a fresh stream is
	// opened and the whole ledger becomes its leading gap.
	Resume *wire.ResumeInfo
	// Counts/LastFrame poll the connection's decoder; Detach kicks the
	// connection (the hub calls the previous epoch's Detach when a
	// resume supersedes a connection the daemon still thinks is live).
	Counts    func() wire.Counts
	LastFrame func() time.Time
	Detach    func()
	// WaterfallSamples sizes a fresh stream's sample ring (0 disables;
	// resumed streams keep their ring).
	WaterfallSamples int
}

// Attach registers an ingest connection, either opening a fresh stream
// or stitching a resume onto an existing one. It returns the stream and
// the connection's epoch handle (passed back to SessionStarted /
// SessionEnded so late callbacks from a superseded connection cannot
// corrupt the current epoch's state).
func (h *Hub) Attach(spec AttachSpec) (*Stream, *epoch) {
	var st *Stream
	h.mu.Lock()
	if spec.Resume != nil {
		for i := len(h.order) - 1; i >= 0; i-- {
			cand := h.streams[h.order[i]]
			if cand.meta.StreamID == spec.Meta.StreamID {
				st = cand
				break
			}
		}
	}
	fresh := st == nil
	if fresh {
		h.nextID++
		st = &Stream{hub: h, id: h.nextID, meta: spec.Meta, started: time.Now()}
		if spec.WaterfallSamples > 0 {
			st.ring = newSampleRing(spec.WaterfallSamples)
		}
		h.streams[st.id] = st
		h.order = append(h.order, st.id)
		h.pruneLocked()
	}
	h.mu.Unlock()

	ep := &epoch{
		remote:    spec.Remote,
		started:   time.Now(),
		resume:    spec.Resume,
		counts:    spec.Counts,
		lastFrame: spec.LastFrame,
		detach:    spec.Detach,
	}
	var superseded func()
	var gapF, gapS int64
	st.mu.Lock()
	if n := len(st.epochs); n > 0 {
		prev := st.epochs[n-1]
		if !prev.done {
			superseded = prev.detach
		}
		ep.num = prev.num + 1
	}
	if spec.Resume != nil && spec.Resume.Epoch > ep.num {
		ep.num = spec.Resume.Epoch
	}
	st.epochs = append(st.epochs, ep)
	st.curEpoch.Store(ep.num)
	if spec.Resume != nil {
		st.absBase.Store(spec.Resume.Offset())
		// Price the gap this resume closes, for the monotonic counters
		// (StreamInfo recomputes lazily and stays exact).
		for _, g := range st.gapsLocked() {
			if g.Epoch == ep.num {
				gapF, gapS = g.Frames, g.Samples
			}
		}
	} else {
		st.absBase.Store(0)
	}
	st.mu.Unlock()

	if fresh {
		h.opened.Inc()
	}
	if spec.Resume != nil {
		h.reconnects.Inc()
		h.gapFrames.Add(gapF)
		h.gapSamples.Add(gapS)
		h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "stream-resume", Stream: st.id, Epoch: ep.num})
	}
	if superseded != nil {
		// The previous connection is still live from the daemon's point
		// of view (half-open, most likely). Kick it so its session winds
		// down; the resume has already taken the stream over.
		superseded()
	}
	return st, ep
}

// endedRetention is how many ended streams the registry keeps for
// post-mortem queries before the oldest are pruned.
const endedRetention = 64

// pruneLocked drops the oldest fully-ended streams past the retention
// bound.
func (h *Hub) pruneLocked() {
	ended := 0
	for _, id := range h.order {
		st := h.streams[id]
		st.mu.Lock()
		if st.doneLocked() {
			ended++
		}
		st.mu.Unlock()
	}
	for ended > endedRetention {
		for i, id := range h.order {
			st := h.streams[id]
			st.mu.Lock()
			done := st.doneLocked()
			st.mu.Unlock()
			if done {
				delete(h.streams, id)
				h.order = append(h.order[:i], h.order[i+1:]...)
				ended--
				break
			}
		}
	}
}

// SessionStarted marks the epoch live (wired to core's OnSessionStart)
// and announces it on the feed.
func (h *Hub) SessionStarted(st *Stream, ep *epoch, session uint64) {
	st.mu.Lock()
	ep.active = true
	ep.session = session
	st.mu.Unlock()
	h.active.Set(h.countActive())
	h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "stream-open", Stream: st.id, Epoch: ep.num})
}

// SessionEnded marks the epoch done (wired to core's OnSessionEnd),
// freezes its wire counters, records degradation, and announces the
// close. res and err may both describe failure modes; a nil res with a
// nil err means the session never started (e.g. NewSession failed).
func (h *Hub) SessionEnded(st *Stream, ep *epoch, res *core.Result, err error) {
	st.mu.Lock()
	ep.active = false
	ep.done = true
	if ep.session == 0 {
		ep.session = ^uint64(0) // never ran; mark terminal for pruning
	}
	if err != nil {
		ep.endErr = err.Error()
	}
	if res != nil && res.Degradation.Any() {
		ep.degraded = res.Degradation.String()
	}
	if ep.counts != nil {
		ep.final = ep.counts()
		ep.counts = nil
	}
	errStr := ep.endErr
	st.mu.Unlock()
	h.active.Set(h.countActive())
	h.broker.Publish(Event{Seq: h.seq.Add(1), Type: "stream-close", Stream: st.id, Epoch: ep.num, Error: errStr})
}

// countActive recounts live streams under the hub lock.
func (h *Hub) countActive() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n int64
	for _, st := range h.streams {
		st.mu.Lock()
		if st.activeLocked() {
			n++
		}
		st.mu.Unlock()
	}
	return n
}

// StallInfo is one silent-but-supposedly-live stream in /healthz.
type StallInfo struct {
	Stream  uint64  `json:"stream"`
	Epoch   uint32  `json:"epoch"`
	Remote  string  `json:"remote"`
	SilentS float64 `json:"silent_s"`
}

// Stalled returns every active stream that has delivered no frame
// (heartbeats included) for longer than stallAfter — the ingest
// liveness check behind /healthz.
func (h *Hub) Stalled(stallAfter time.Duration, now time.Time) []StallInfo {
	h.mu.Lock()
	sts := make([]*Stream, 0, len(h.order))
	for _, id := range h.order {
		sts = append(sts, h.streams[id])
	}
	h.mu.Unlock()
	var out []StallInfo
	for _, st := range sts {
		st.mu.Lock()
		if st.activeLocked() {
			ep := st.epochs[len(st.epochs)-1]
			if silent := now.Sub(st.lastFrameLocked(ep)); silent > stallAfter {
				out = append(out, StallInfo{
					Stream: st.id, Epoch: ep.num, Remote: ep.remote,
					SilentS: silent.Seconds(),
				})
			}
		}
		st.mu.Unlock()
	}
	return out
}

// Detection records one fast-detector verdict: store history for the
// REST API, counters, and a live event. Runs on the session's dispatch
// goroutine; must not block. Spans arrive epoch-relative; the stream's
// absolute base places them on the transmit timeline.
func (h *Hub) Detection(st *Stream, d core.Detection) {
	h.detection(st, d)
}

// detection appends the record (stamped from the hub's allocator, so
// the live event and the stored record share one sequence number) and
// returns it for the capture path to key its snippet on.
func (h *Hub) detection(st *Stream, d core.Detection) DetectionRecord {
	base := st.absBase.Load()
	rec := DetectionRecord{
		Seq:        h.seq.Add(1),
		Stream:     st.id,
		Epoch:      st.curEpoch.Load(),
		TimeS:      (float64(base) + float64(d.Span.Start)) / float64(h.clock.Rate),
		Family:     d.Family.FamilyName(),
		Detector:   d.Detector,
		Start:      int64(d.Span.Start),
		End:        int64(d.Span.End),
		AbsStart:   base + int64(d.Span.Start),
		AbsEnd:     base + int64(d.Span.End),
		Confidence: d.Confidence,
		Channel:    d.Channel,
	}
	st.detections.Add(1)
	h.detCount.Inc()
	if err := h.store.AppendDetection(&rec); err != nil {
		h.storeErrs.Inc()
	}
	h.broker.Publish(Event{Seq: rec.Seq, Type: "detection", Stream: st.id, Epoch: rec.Epoch, Detection: &rec})
	return rec
}

// DetectionCaptured is Detection plus the DVR half: the triggering IQ
// burst rides along (core's capture hook), and the hub banks it as a
// snippet keyed by the detection's sequence number. The burst buffer is
// owned by the session and reused — the store's append contract is to
// copy, never retain.
func (h *Hub) DetectionCaptured(st *Stream, d core.Detection, span iq.Interval, burst iq.Samples) {
	rec := h.detection(st, d)
	base := st.absBase.Load()
	snip := history.Snippet{
		Seq:       h.seq.Add(1),
		Stream:    st.id,
		Detection: rec.Seq,
		Epoch:     rec.Epoch,
		Rate:      h.clock.Rate,
		Start:     base + int64(span.Start),
		End:       base + int64(span.End),
		IQ:        burst,
	}
	if err := h.store.AppendSnippet(&snip); err != nil {
		h.storeErrs.Inc()
	}
}

// Packet records one decoded packet, reusing the offline packet-log
// record as the single packet schema.
func (h *Hub) Packet(st *Stream, p demod.Packet) {
	ev := PacketEvent{Seq: h.seq.Add(1), Stream: st.id, PacketRecord: trace.NewPacketRecord(h.clock, p)}
	st.packets.Add(1)
	h.pktCount.Inc()
	if err := h.store.AppendPacket(&ev); err != nil {
		h.storeErrs.Inc()
	}
	h.broker.Publish(Event{Seq: ev.Seq, Type: "packet", Stream: st.id, Epoch: st.curEpoch.Load(), Packet: &ev})
}

// Tile banks one waterfall column (built by the daemon's ingest tee)
// into the store. No live event: the SSE feed carries detections and
// packets; tiles are history for the query API.
func (h *Hub) Tile(t *history.Tile) {
	t.Seq = h.seq.Add(1)
	if err := h.store.AppendTile(t); err != nil {
		h.storeErrs.Inc()
	}
}

// Streams snapshots every registered stream, oldest first.
func (h *Hub) Streams() []StreamInfo {
	now := time.Now()
	h.mu.Lock()
	sts := make([]*Stream, 0, len(h.order))
	for _, id := range h.order {
		sts = append(sts, h.streams[id])
	}
	h.mu.Unlock()
	out := make([]StreamInfo, len(sts))
	for i, st := range sts {
		out[i] = st.info(now)
	}
	return out
}

// Stream returns a registered stream by id.
func (h *Hub) Stream(id uint64) (*Stream, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.streams[id]
	return st, ok
}

// newestStream returns the most recently opened stream, preferring an
// active one (the default target for /api/waterfall).
func (h *Hub) newestStream() (*Stream, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var fallback *Stream
	for i := len(h.order) - 1; i >= 0; i-- {
		st := h.streams[h.order[i]]
		if fallback == nil {
			fallback = st
		}
		st.mu.Lock()
		act := st.activeLocked()
		st.mu.Unlock()
		if act {
			return st, true
		}
	}
	return fallback, fallback != nil
}

// Detections returns up to limit newest detection records (0 = all
// retained), optionally filtered to one stream id (0 = all streams) —
// the legacy ring-snapshot semantics, now answered by the store.
func (h *Hub) Detections(stream uint64, limit int) []DetectionRecord {
	return h.store.RecentDetections(stream, limit)
}

// Packets returns up to limit newest packet events, as Detections.
func (h *Hub) Packets(stream uint64, limit int) []PacketEvent {
	return h.store.RecentPackets(stream, limit)
}

// ring is a fixed-capacity overwrite-oldest buffer. The hub's history
// moved behind history.Store; the ring remains the waterfall tee's
// building block and a tested primitive.
type ring[T any] struct {
	buf  []T
	next int
	full bool
}

func newRing[T any](n int) *ring[T] {
	if n < 1 {
		n = 1
	}
	return &ring[T]{buf: make([]T, n)}
}

func (r *ring[T]) add(v T) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the contents oldest-first.
func (r *ring[T]) snapshot() []T {
	if !r.full {
		out := make([]T, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// sampleRing keeps the most recent capacity samples of a stream for the
// waterfall endpoint. Appends run on the ingest goroutine between block
// reads, so the copy must stay cheap; snapshots run on API goroutines.
type sampleRing struct {
	mu    sync.Mutex
	buf   iq.Samples
	n     int // valid samples
	next  int // write cursor
	total int64
}

func newSampleRing(capacity int) *sampleRing {
	if capacity < iq.ChunkSamples {
		capacity = iq.ChunkSamples
	}
	return &sampleRing{buf: make(iq.Samples, capacity)}
}

// Append adds the next span of the stream, overwriting the oldest.
func (r *sampleRing) Append(s iq.Samples) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total += int64(len(s))
	if len(s) >= len(r.buf) {
		copy(r.buf, s[len(s)-len(r.buf):])
		r.next = 0
		r.n = len(r.buf)
		return
	}
	k := copy(r.buf[r.next:], s)
	if k < len(s) {
		copy(r.buf, s[k:])
	}
	r.next = (r.next + len(s)) % len(r.buf)
	if r.n < len(r.buf) {
		r.n += len(s)
		if r.n > len(r.buf) {
			r.n = len(r.buf)
		}
	}
}

// Snapshot copies out the retained samples, oldest first.
func (r *sampleRing) Snapshot() iq.Samples {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(iq.Samples, r.n)
	if r.n < len(r.buf) {
		copy(out, r.buf[:r.n])
		return out
	}
	k := copy(out, r.buf[r.next:])
	copy(out[k:], r.buf[:r.next])
	return out
}

// Total returns how many samples have passed through the ring.
func (r *sampleRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
