package server

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/history"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/wire"
)

// streamTrace pushes the trace through the daemon's ingest listener and
// waits for the session to finish.
func streamTrace(t *testing.T, ln net.Listener, ts *httptest.Server, res *ether.Result, streamID uint32) []StreamInfo {
	t.Helper()
	client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{StreamID: streamID, Rate: res.Clock.Rate})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendSamples(res.Samples); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	return waitStreamsDone(t, ts.URL, 1)
}

// detPage is the envelope of /api/streams/{id}/detections.
type detPage struct {
	Detections []DetectionRecord `json:"detections"`
	Next       uint64            `json:"next_cursor"`
	More       bool              `json:"more"`
}

// TestHistoryQueryAPI drives the cursor-paginated query surface end to
// end: pages reassemble the full history with no duplicates, edge-case
// queries degrade gracefully, and /api/history reports the store.
func TestHistoryQueryAPI(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{QueryRPS: -1})
	streamTrace(t, ln, ts, res, 7)

	var recent struct {
		Detections []DetectionRecord `json:"detections"`
	}
	getJSON(t, ts.URL+"/api/detections", &recent)
	if len(recent.Detections) == 0 {
		t.Fatal("no detections; trace too quiet")
	}

	// Page with a small limit; the walk must visit every record exactly
	// once, in strictly increasing sequence order.
	var (
		walked []DetectionRecord
		cursor uint64
	)
	for {
		var page detPage
		getJSON(t, ts.URL+"/api/streams/0/detections?limit=3&cursor="+utoa(cursor), &page)
		if len(page.Detections) > 3 {
			t.Fatalf("page of %d exceeds limit 3", len(page.Detections))
		}
		walked = append(walked, page.Detections...)
		cursor = page.Next
		if !page.More {
			break
		}
		if len(walked) > 10*len(recent.Detections) {
			t.Fatal("pagination never terminates")
		}
	}
	if len(walked) != len(recent.Detections) {
		t.Fatalf("pagination walked %d records, recent endpoint has %d", len(walked), len(recent.Detections))
	}
	var prev uint64
	for i, rec := range walked {
		if rec.Seq <= prev {
			t.Fatalf("record %d out of order: seq %d after %d", i, rec.Seq, prev)
		}
		prev = rec.Seq
		if !reflect.DeepEqual(rec, recent.Detections[i]) {
			t.Fatalf("record %d differs between query and recent endpoints:\n%+v\n%+v", i, rec, recent.Detections[i])
		}
	}

	// Edge cases the issue calls out.
	var page detPage
	getJSON(t, ts.URL+"/api/streams/0/detections?from=5&to=1", &page)
	if len(page.Detections) != 0 || page.More {
		t.Errorf("from>to returned %d records, more=%v", len(page.Detections), page.More)
	}
	getJSON(t, ts.URL+"/api/streams/0/detections?cursor=999999999", &page)
	if len(page.Detections) != 0 || page.More || page.Next != 999999999 {
		t.Errorf("cursor past end: %+v", page)
	}
	getJSON(t, ts.URL+"/api/streams/424242/detections", &page)
	if len(page.Detections) != 0 {
		t.Errorf("unknown stream returned %d records", len(page.Detections))
	}
	// Half-open time window [first.t, first.t+eps) isolates the head.
	first := recent.Detections[0].TimeS
	getJSON(t, ts.URL+"/api/streams/0/detections?from="+ftoa(first)+"&to="+ftoa(first+1e-6), &page)
	if len(page.Detections) == 0 {
		t.Error("time window around the first detection matched nothing")
	}
	for _, rec := range page.Detections {
		if rec.TimeS < first || rec.TimeS >= first+1e-6 {
			t.Errorf("record t=%v escapes the window", rec.TimeS)
		}
	}

	// Packets paginate through the same surface.
	var pkts struct {
		Packets []PacketEvent `json:"packets"`
		More    bool          `json:"more"`
	}
	getJSON(t, ts.URL+"/api/streams/0/packets?limit=100", &pkts)
	if len(pkts.Packets) == 0 {
		t.Error("no packets via the query surface")
	}

	// Tiles persisted from the ingest tee (the trace is far longer than
	// one default tile at the test's sizes — so force a small tile span
	// in a dedicated daemon below if this ever flakes; here just check
	// the endpoint shape).
	var tiles struct {
		Tiles []history.Tile `json:"tiles"`
	}
	getJSON(t, ts.URL+"/api/streams/0/tiles", &tiles)

	// The store snapshot.
	var st history.Stats
	getJSON(t, ts.URL+"/api/history", &st)
	if st.Kind != "memory" {
		t.Errorf("store kind %q, want memory", st.Kind)
	}
	if st.Detections != int64(len(recent.Detections)) {
		t.Errorf("stats detections %d, want %d", st.Detections, len(recent.Detections))
	}
	if st.DetectionCap == 0 || st.PacketCap == 0 {
		t.Errorf("memory store stats missing ring capacities: %+v", st)
	}

	// Capacities surface in /api/metricz (the satellite requirement).
	var snap metrics.Snapshot
	getJSON(t, ts.URL+"/api/metricz?format=json", &snap)
	if snap.Gauges["history/detection_cap"] == 0 || snap.Gauges["history/packet_cap"] == 0 {
		t.Errorf("metricz missing history capacity gauges: %v", snap.Gauges)
	}
}

// TestHistoryQueryQuota: the new query endpoints are token-bucket
// limited per host (429 + Retry-After past the burst), while the legacy
// surface the tooling polls stays unthrottled.
func TestHistoryQueryQuota(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	_, _, ts := newTestDaemon(t, res.Clock, reg, Options{QueryRPS: 5, QueryBurst: 5})

	var ok, throttled int
	for i := 0; i < 30; i++ {
		resp, err := http.Get(ts.URL + "/api/streams/0/detections")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			throttled++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if ok == 0 || throttled == 0 {
		t.Fatalf("burst of 30: %d ok, %d throttled — want both nonzero", ok, throttled)
	}
	if reg.Counter("server/api/throttled").Load() == 0 {
		t.Error("throttling not counted")
	}
	// The legacy endpoints never pay the quota.
	for i := 0; i < 30; i++ {
		resp, err := http.Get(ts.URL + "/api/streams")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("legacy endpoint throttled: %d", resp.StatusCode)
		}
	}
}

// readSSE collects SSE events from body until want events arrived or
// the deadline passed.
func readSSE(t *testing.T, body *bufio.Scanner, want int, deadline time.Duration) []Event {
	t.Helper()
	done := make(chan []Event, 1)
	go func() {
		var out []Event
		for body.Scan() {
			line := body.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				continue
			}
			out = append(out, ev)
			if len(out) >= want {
				break
			}
		}
		done <- out
	}()
	select {
	case evs := <-done:
		return evs
	case <-time.After(deadline):
		t.Fatalf("timed out waiting for %d SSE events", want)
		return nil
	}
}

// TestSSECatchUp: /api/live?since=<seq> replays stored history before
// the live tail — a dashboard reconnecting with the last sequence it
// saw misses nothing, sees nothing twice, and gets records in order.
func TestSSECatchUp(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{QueryRPS: -1})
	streamTrace(t, ln, ts, res, 7)

	var recent struct {
		Detections []DetectionRecord `json:"detections"`
	}
	var pkts struct {
		Packets []PacketEvent `json:"packets"`
	}
	getJSON(t, ts.URL+"/api/detections", &recent)
	getJSON(t, ts.URL+"/api/packets", &pkts)
	total := len(recent.Detections) + len(pkts.Packets)
	if total == 0 {
		t.Fatal("nothing to replay")
	}

	resp, err := http.Get(ts.URL + "/api/live?since=0&types=detection,packet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	evs := readSSE(t, sc, total, 20*time.Second)
	if len(evs) != total {
		t.Fatalf("replayed %d events, want %d", len(evs), total)
	}
	var prev uint64
	var dets int
	for i, ev := range evs {
		if ev.Seq <= prev {
			t.Fatalf("event %d out of order: seq %d after %d", i, ev.Seq, prev)
		}
		prev = ev.Seq
		if ev.Type == "detection" {
			dets++
		}
	}
	if dets != len(recent.Detections) {
		t.Errorf("replayed %d detections, want %d", dets, len(recent.Detections))
	}

	// Resuming from a mid-history sequence yields exactly the records
	// after it.
	mid := recent.Detections[len(recent.Detections)/2].Seq
	var wantAfter int
	for _, rec := range recent.Detections {
		if rec.Seq > mid {
			wantAfter++
		}
	}
	resp2, err := http.Get(ts.URL + "/api/live?since=" + utoa(mid) + "&types=detection")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	sc2.Buffer(make([]byte, 1<<20), 1<<20)
	evs2 := readSSE(t, sc2, wantAfter, 20*time.Second)
	for i, ev := range evs2 {
		if ev.Seq <= mid {
			t.Errorf("event %d: seq %d not after since=%d", i, ev.Seq, mid)
		}
	}
	if len(evs2) != wantAfter {
		t.Errorf("since=%d replayed %d detections, want %d", mid, len(evs2), wantAfter)
	}
}

// TestDaemonDiskStoreSurvivesRestart is the DVR acceptance path inside
// the server package: a daemon over the segment store records history
// and a captured IQ snippet; a second daemon opened on the same
// directory (the first closed abruptly, mid-segment) serves the same
// records, the snippet intact — and the snippet re-demodulates offline
// to the same frame bytes the live run decoded.
func TestDaemonDiskStoreSurvivesRestart(t *testing.T) {
	res := testTrace(t)
	dir := t.TempDir()

	build := func() (*Daemon, net.Listener, *httptest.Server) {
		cfg, err := core.ParseDetectors("timing,phase")
		if err != nil {
			t.Fatal(err)
		}
		eng := core.NewEngine(res.Clock, cfg, func() core.Analyzer { return demod.NewWiFiDemod() })
		d, err := NewDaemon(Options{
			Engine:   eng,
			Registry: metrics.NewRegistry(),
			StoreDir: dir,
			Capture:  true,
			QueryRPS: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = d.Serve(ln) }()
		return d, ln, httptest.NewServer(d.APIHandler())
	}

	d1, ln1, ts1 := build()
	streamTrace(t, ln1, ts1, res, 7)

	var before detPage
	getJSON(t, ts1.URL+"/api/streams/0/detections?limit=1000", &before)
	if len(before.Detections) == 0 {
		t.Fatal("no detections recorded")
	}
	var livePkts struct {
		Packets []PacketEvent `json:"packets"`
	}
	getJSON(t, ts1.URL+"/api/packets", &livePkts)
	if len(livePkts.Packets) == 0 {
		t.Fatal("no packets recorded")
	}

	// Find a detection with a snippet (capture stores one per detection).
	var snipJSON history.SnippetJSON
	found := false
	for _, rec := range before.Detections {
		resp, err := http.Get(ts1.URL + "/api/streams/" + utoa(rec.Stream) + "/snippets/" + utoa(rec.Seq))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&snipJSON); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			found = true
			break
		}
		resp.Body.Close()
	}
	if !found {
		t.Fatal("no detection has a captured snippet")
	}
	ts1.Close()
	d1.Close()

	// Restart on the same directory.
	d2, _, ts2 := build()
	defer func() { ts2.Close(); d2.Close() }()

	var after detPage
	getJSON(t, ts2.URL+"/api/streams/0/detections?limit=1000", &after)
	if len(after.Detections) != len(before.Detections) {
		t.Fatalf("restart lost detections: %d before, %d after", len(before.Detections), len(after.Detections))
	}
	for i := range after.Detections {
		if !reflect.DeepEqual(after.Detections[i], before.Detections[i]) {
			t.Fatalf("detection %d changed across restart:\n%+v\n%+v", i, before.Detections[i], after.Detections[i])
		}
	}
	var st history.Stats
	getJSON(t, ts2.URL+"/api/history", &st)
	if st.Kind != "segment" {
		t.Errorf("store kind %q, want segment", st.Kind)
	}

	// The snippet survived too, byte-identical.
	var snip2 history.SnippetJSON
	getJSON(t, ts2.URL+"/api/streams/"+utoa(snipJSON.Stream)+"/snippets/"+utoa(snipJSON.Detection), &snip2)
	if snip2 != snipJSON {
		t.Fatalf("snippet changed across restart")
	}

	// Replay: re-demodulating the captured burst offline recovers frame
	// bytes the live run decoded. Phase detectors — a lone burst has no
	// inter-frame timing for the timing detectors to key on.
	snip, err := snip2.Snippet()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := core.ParseDetectors("phase")
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := core.NewPipeline(iq.NewClock(snip.Rate), cfg, demod.NewWiFiDemod()).
		RunStream(&sliceSrc{s: snip.IQ}, core.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	liveFrames := map[string]bool{}
	for _, pe := range livePkts.Packets {
		if pe.Frame != "" {
			liveFrames[pe.Frame] = true
		}
	}
	matched := false
	for _, item := range replayRes.Outputs {
		p, ok := item.(demod.Packet)
		if !ok || !p.Valid || len(p.Frame) == 0 {
			continue
		}
		if liveFrames[hexFrame(p.Frame)] {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("replayed snippet decoded no frame matching the live run (%d replay outputs, %d live frames)",
			len(replayRes.Outputs), len(liveFrames))
	}
}

// TestNewHubRejectsNegativeRings is the satellite guard: a negative
// ring size errors instead of silently defaulting.
func TestNewHubRejectsNegativeRings(t *testing.T) {
	if _, err := NewHub(HubConfig{DetectionRing: -1}); err == nil {
		t.Error("negative DetectionRing accepted")
	}
	if _, err := NewHub(HubConfig{PacketRing: -1}); err == nil {
		t.Error("negative PacketRing accepted")
	}
	if _, err := NewDaemon(Options{}); err == nil {
		t.Error("NewDaemon without engine accepted")
	}
}

func utoa(v uint64) string  { return strconv.FormatUint(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func hexFrame(b []byte) string { return hex.EncodeToString(b) }
