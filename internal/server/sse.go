// Package server is the live-monitoring daemon over the streaming
// pipeline: it aggregates the detections, decoded packets and stream
// health of every ingest connection into one queryable surface — REST
// endpoints for state, a server-sent-events feed for the live tail.
// This is the "tcpdump for the wireless ether" as a service: rfdumpd
// listens where hcidump/tcpdump would read an interface, and any number
// of observers watch without touching the sample path.
//
// The serving machinery itself — the SSE broker, the per-host query
// quota, the shared /api/live, /api/history, probe and DVR-query
// handlers — lives in internal/serving, because the aggregation tier
// (internal/cluster) exports the identical surface. This package keeps
// aliases so daemon code and its clients read naturally.
package server

import (
	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/serving"
)

// Event, Subscriber and Broker are the shared serving core's fan-out
// types (see serving.Event for the feed framing and the
// never-backpressure contract).
type (
	Event      = serving.Event
	Subscriber = serving.Subscriber
	Broker     = serving.Broker
)

// DetectionRecord and PacketEvent are the hub's record schemas, owned
// by the history store (the spectrum DVR): the same value the live feed
// publishes is what the store persists and the query API pages, so a
// replayed record is byte-identical to the one a live subscriber saw.
type (
	DetectionRecord = history.DetectionRecord
	PacketEvent     = history.PacketEvent
)

// NewBroker returns a broker handing each subscriber a queue of the
// given length (minimum 1), sharded for this machine's core count.
// evictAfter is the consecutive-drop budget before a subscriber is
// evicted (0 disables eviction). reg may be nil.
func NewBroker(queue, evictAfter int, reg *metrics.Registry) *Broker {
	return serving.NewBroker(queue, evictAfter, reg)
}

// NewBrokerSharded is NewBroker with an explicit shard count (≤0 takes
// the machine default).
func NewBrokerSharded(queue, evictAfter, shards int, reg *metrics.Registry) *Broker {
	return serving.NewBrokerSharded(queue, evictAfter, shards, reg)
}
