// Package server is the live-monitoring daemon over the streaming
// pipeline: it aggregates the detections, decoded packets and stream
// health of every ingest connection into one queryable surface — REST
// endpoints for state, a server-sent-events feed for the live tail.
// This is the "tcpdump for the wireless ether" as a service: rfdumpd
// listens where hcidump/tcpdump would read an interface, and any number
// of observers watch without touching the sample path.
//
// The cardinal rule of the fan-out is that observers never apply
// backpressure to ingest: every subscriber owns a bounded queue, and a
// publisher that finds it full drops the event for that subscriber and
// counts the drop. A stalled dashboard loses events; the 8 Msps sample
// path loses nothing.
package server

import (
	"sync"
	"sync/atomic"

	"rfdump/internal/metrics"
	"rfdump/internal/trace"
)

// Event is one entry of the live feed. Type selects which payload field
// is set: "detection", "packet", "stream-open", "stream-close".
type Event struct {
	// Seq is the hub-wide event sequence number; a gap tells a
	// subscriber it was too slow and events were dropped.
	Seq uint64 `json:"seq"`
	// Type is the event kind.
	Type string `json:"type"`
	// Stream is the hub stream id the event belongs to.
	Stream uint64 `json:"stream"`
	// Detection is set for "detection" events.
	Detection *DetectionRecord `json:"detection,omitempty"`
	// Packet is set for "packet" events.
	Packet *PacketEvent `json:"packet,omitempty"`
	// Error carries the session error on "stream-close" (empty = clean).
	Error string `json:"error,omitempty"`
}

// DetectionRecord is the JSON form of one fast-detector verdict.
type DetectionRecord struct {
	Stream     uint64  `json:"stream"`
	TimeS      float64 `json:"t"`
	Family     string  `json:"family"`
	Detector   string  `json:"detector"`
	Start      int64   `json:"start"`
	End        int64   `json:"end"`
	Confidence float64 `json:"confidence"`
	Channel    int     `json:"channel"`
}

// PacketEvent is one decoded packet tagged with its stream — the
// embedded record is trace.PacketRecord, the same schema the offline
// packet log writes, built by the same constructor.
type PacketEvent struct {
	Stream uint64 `json:"stream"`
	trace.PacketRecord
}

// Subscriber is one bounded event queue. Read Events until it is
// unsubscribed; Dropped counts events the publisher discarded because
// the queue was full.
type Subscriber struct {
	ch      chan Event
	types   map[string]bool // nil = all types
	dropped atomic.Int64
}

// Events returns the receive side of the queue.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to backpressure.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// wants reports whether the subscriber's type filter admits the event.
func (s *Subscriber) wants(ev Event) bool { return s.types == nil || s.types[ev.Type] }

// Broker fans events out to subscribers with per-subscriber bounded
// queues. Publish never blocks: a full queue means the event is dropped
// for that subscriber and counted, both per-subscriber and in the
// registry ("server/sse/dropped_events"), where the /api/metricz scrape
// makes slow consumers visible.
type Broker struct {
	queue int

	mu   sync.RWMutex
	subs map[*Subscriber]struct{}

	published *metrics.Counter
	dropped   *metrics.Counter
	gauge     *metrics.Gauge
}

// NewBroker returns a broker handing each subscriber a queue of the
// given length (minimum 1). reg may be nil.
func NewBroker(queue int, reg *metrics.Registry) *Broker {
	if queue < 1 {
		queue = 1
	}
	return &Broker{
		queue:     queue,
		subs:      make(map[*Subscriber]struct{}),
		published: reg.Counter("server/sse/events"),
		dropped:   reg.Counter("server/sse/dropped_events"),
		gauge:     reg.Gauge("server/sse/subscribers"),
	}
}

// Subscribe registers a new queue. An empty types list subscribes to
// every event type.
func (b *Broker) Subscribe(types ...string) *Subscriber {
	s := &Subscriber{ch: make(chan Event, b.queue)}
	if len(types) > 0 {
		s.types = make(map[string]bool, len(types))
		for _, t := range types {
			s.types[t] = true
		}
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.gauge.Set(int64(len(b.subs)))
	b.mu.Unlock()
	return s
}

// Unsubscribe removes the queue and closes its channel.
func (b *Broker) Unsubscribe(s *Subscriber) {
	b.mu.Lock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
	b.gauge.Set(int64(len(b.subs)))
	b.mu.Unlock()
}

// Publish delivers the event to every subscriber whose queue has room;
// the rest drop-and-count. It runs on pipeline callback goroutines and
// must never block.
func (b *Broker) Publish(ev Event) {
	b.published.Inc()
	b.mu.RLock()
	for s := range b.subs {
		if !s.wants(ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			b.dropped.Inc()
		}
	}
	b.mu.RUnlock()
}
