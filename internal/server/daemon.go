package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/faults"
	"rfdump/internal/flowgraph"
	"rfdump/internal/history"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/serving"
	"rfdump/internal/wire"
)

// DefaultStallAfter is how long an active ingest stream may deliver no
// frame (heartbeats included) before /healthz reports it stalled. A
// transmitter heartbeating at the usual 1–5 s cadence stays comfortably
// inside it; a half-open connection blows through it in one interval.
const DefaultStallAfter = 5 * time.Second

// Options configures a Daemon.
type Options struct {
	// Engine is the shared streaming pipeline (required). Each ingest
	// connection becomes one Session over it; all sessions recycle
	// blocks through the engine's pool.
	Engine *core.Engine
	// Registry receives every daemon counter; may be nil (the daemon
	// then runs unmetered thanks to nil-safe instruments).
	Registry *metrics.Registry
	// Session is the per-connection stream configuration template:
	// window size, supervision, overload control. The daemon owns the
	// delivery callbacks and lifecycle hooks and overwrites them (it
	// also forces NoRetain — a long-lived daemon must not accumulate
	// per-session results).
	Session core.StreamConfig
	// Faults, when non-empty, is a faults.ParseSpec front-end fault
	// specification applied to every ingest connection; Retries bounds
	// transient-error retries (as rfdump -faults/-retries).
	Faults  string
	Retries int
	// Store, when set, persists detections, packets, waterfall tiles and
	// captured IQ snippets (the spectrum DVR). Nil with an empty StoreDir
	// keeps history in memory, bounded by the ring sizes below — the
	// legacy behavior. The daemon owns the store and closes it in Close.
	Store history.Store
	// StoreDir, when non-empty (and Store is nil), opens the disk-backed
	// segment store there; StoreMaxBytes / StoreMaxAge bound its
	// retention (zero takes the engine defaults).
	StoreDir      string
	StoreMaxBytes int64
	StoreMaxAge   time.Duration
	// Capture records the raw IQ burst behind every detection as a
	// snippet in the store; CapturePad / CaptureMaxSamples tune the span
	// (see core.StreamConfig).
	Capture           bool
	CapturePad        int
	CaptureMaxSamples int
	// TileSamples is the span of one persisted waterfall tile in samples
	// (default 1<<19 ≈ 65 ms at 8 Msps; negative disables tiles);
	// TileBins the number of power bins per tile (default 64).
	TileSamples int
	TileBins    int
	// QueryRPS / QueryBurst rate-limit the history query endpoints per
	// client host (token bucket; defaults 20 rps, burst 40; negative RPS
	// disables). The legacy endpoints are exempt.
	QueryRPS   float64
	QueryBurst int
	// Hub sizing (see HubConfig); zero values take defaults.
	DetectionRing   int
	PacketRing      int
	SubscriberQueue int
	// EvictAfter is the consecutive-drop budget before a slow SSE
	// subscriber is evicted (0 takes the hub default of 4× the queue;
	// negative disables eviction).
	EvictAfter int
	// IdleTimeout reaps ingest connections that deliver no frame for
	// the duration — the supervision that clears half-open sockets
	// (0 disables). Heartbeat frames count as frames, so an idle but
	// heartbeating transmitter survives.
	IdleTimeout time.Duration
	// StallAfter is the /healthz threshold: an active stream silent for
	// longer is reported as stalled (0 takes DefaultStallAfter,
	// negative disables the check).
	StallAfter time.Duration
	// WaterfallSamples sizes each stream's recent-sample ring for
	// /api/waterfall (default 1<<19 ≈ 65 ms at 8 Msps; negative
	// disables).
	WaterfallSamples int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Daemon ties the pieces of rfdumpd together: a wire.Server accepting
// IQ ingest connections, one core.Session per connection, and a Hub
// aggregating results for the HTTP API. It is the live half of the
// paper's architecture — the same engine the offline tool uses, fed by
// the network instead of a trace file.
type Daemon struct {
	opt      Options
	clock    iq.Clock
	reg      *metrics.Registry
	hub      *Hub
	wire     *wire.Server
	faultCfg *faults.Config
	quota    *serving.Quota
	draining atomic.Bool

	conns    *metrics.Counter
	rejected *metrics.Counter
	hbMissed *metrics.Counter
}

// NewDaemon validates options and assembles the daemon.
func NewDaemon(opt Options) (*Daemon, error) {
	if opt.Engine == nil {
		return nil, errors.New("server: Options.Engine is required")
	}
	if opt.WaterfallSamples == 0 {
		opt.WaterfallSamples = 1 << 19
	}
	if opt.WaterfallSamples < 0 {
		opt.WaterfallSamples = 0
	}
	if opt.StallAfter == 0 {
		opt.StallAfter = DefaultStallAfter
	}
	if opt.StallAfter < 0 {
		opt.StallAfter = 0
	}
	if opt.TileSamples == 0 {
		opt.TileSamples = 1 << 19
	}
	if opt.TileBins <= 0 {
		opt.TileBins = 64
	}
	store := opt.Store
	if store == nil && opt.StoreDir != "" {
		var err error
		store, err = history.OpenDisk(history.DiskConfig{
			Dir:      opt.StoreDir,
			MaxBytes: opt.StoreMaxBytes,
			MaxAge:   opt.StoreMaxAge,
			Registry: opt.Registry,
		})
		if err != nil {
			return nil, fmt.Errorf("server: history store: %w", err)
		}
	}
	hub, err := NewHub(HubConfig{
		Clock:           opt.Engine.Clock(),
		Store:           store,
		DetectionRing:   opt.DetectionRing,
		PacketRing:      opt.PacketRing,
		SubscriberQueue: opt.SubscriberQueue,
		EvictAfter:      opt.EvictAfter,
		Registry:        opt.Registry,
	})
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	d := &Daemon{
		opt:      opt,
		clock:    opt.Engine.Clock(),
		reg:      opt.Registry,
		hub:      hub,
		quota:    serving.NewQuota(opt.QueryRPS, opt.QueryBurst, opt.Registry),
		conns:    opt.Registry.Counter("server/ingest/connections"),
		rejected: opt.Registry.Counter("server/ingest/rejected"),
		hbMissed: opt.Registry.Counter("server/heartbeats_missed"),
	}
	if opt.Faults != "" {
		cfg, err := faults.ParseSpec(opt.Faults)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		d.faultCfg = &cfg
	}
	d.wire = wire.NewServer(d.handle)
	if opt.IdleTimeout > 0 {
		d.wire.SetIdleTimeout(opt.IdleTimeout)
	}
	return d, nil
}

// Hub returns the daemon's stream/event registry.
func (d *Daemon) Hub() *Hub { return d.hub }

// Serve accepts ingest connections on ln until Drain or Close.
func (d *Daemon) Serve(ln net.Listener) error { return d.wire.Serve(ln) }

// Drain stops accepting, nudges every ingest connection so blocked
// reads return, and waits for the per-connection sessions to finish
// flushing their pipelines. Results already produced stay queryable.
func (d *Daemon) Drain() {
	d.draining.Store(true)
	d.wire.Drain()
	d.wire.Wait()
}

// Close aborts: ingest connections are closed outright, then the
// history store is released (Drain leaves it open so results stay
// queryable through the drain window).
func (d *Daemon) Close() {
	d.draining.Store(true)
	d.wire.Close()
	d.wire.Wait()
	_ = d.hub.Close()
}

// WireServer returns the ingest listener host (Serve/Drain/Close live
// there; the daemon wraps the lifecycle ones it needs).
func (d *Daemon) WireServer() *wire.Server { return d.wire }

// logf forwards to Options.Logf when set.
func (d *Daemon) logf(format string, args ...any) {
	if d.opt.Logf != nil {
		d.opt.Logf(format, args...)
	}
}

// refreshGauges is the /api/metricz prepare hook: pull-style gauges
// nothing updates on the hot path.
func (d *Daemon) refreshGauges() {
	st := d.opt.Engine.Pool().Stats()
	d.reg.Gauge("blocks/pool/gets").Set(st.Gets)
	d.reg.Gauge("blocks/pool/news").Set(st.News)
	d.reg.Gauge("blocks/pool/puts").Set(st.Puts)
	d.reg.Gauge("blocks/pool/live").Set(st.Live)
	hs := d.hub.store.Stats()
	d.reg.Gauge("history/last_seq").Set(int64(hs.LastSeq))
	d.reg.Gauge("history/detections").Set(hs.Detections)
	d.reg.Gauge("history/packets").Set(hs.Packets)
	d.reg.Gauge("history/tiles").Set(hs.Tiles)
	d.reg.Gauge("history/snippets").Set(hs.Snippets)
	d.reg.Gauge("history/bytes").Set(hs.Bytes)
	d.reg.Gauge("history/segments").Set(int64(hs.Segments))
	// The configured ring capacities, surfaced so operators can see the
	// bound their /api history queries run against (0 = not count-bound,
	// i.e. the segment store).
	d.reg.Gauge("history/detection_cap").Set(int64(hs.DetectionCap))
	d.reg.Gauge("history/packet_cap").Set(int64(hs.PacketCap))
}

// handle runs one ingest connection to completion: read the stream
// meta (and resume handshake, if reconnecting), attach to the hub,
// build the source chain (wire conn → faults → waterfall tee → drain
// guard) and drive a fresh session.
func (d *Daemon) handle(c *wire.Conn) {
	d.conns.Inc()
	meta, err := c.Meta()
	if err != nil {
		d.logf("ingest %s: handshake: %v", c.RemoteAddr(), err)
		return
	}
	if meta.Rate != 0 && meta.Rate != d.clock.Rate {
		d.rejected.Inc()
		d.logf("ingest %s: rate %d Hz does not match engine clock %d Hz; rejecting",
			c.RemoteAddr(), meta.Rate, d.clock.Rate)
		return
	}
	var resume *wire.ResumeInfo
	if ri, ok := c.Resume(); ok {
		resume = &ri
	}
	st, ep := d.hub.Attach(AttachSpec{
		Remote:           c.RemoteAddr(),
		Meta:             meta,
		Resume:           resume,
		Counts:           c.Counts,
		LastFrame:        c.LastFrame,
		Detach:           func() { c.Close() },
		WaterfallSamples: d.opt.WaterfallSamples,
	})
	if resume != nil {
		d.logf("ingest %s: stream %d resumed (epoch %d, offset %d)",
			c.RemoteAddr(), st.ID(), resume.Epoch, resume.Offset())
	} else {
		d.logf("ingest %s: stream %d open (rate=%d Hz center=%d Hz)",
			c.RemoteAddr(), st.ID(), meta.Rate, meta.CenterHz)
	}

	scfg := d.opt.Session
	scfg.NoRetain = true
	if d.opt.Capture {
		// Exactly one detection path: the capture hook both records the
		// detection and banks its IQ burst (a separate OnDetection would
		// double-append).
		scfg.CapturePad = d.opt.CapturePad
		scfg.CaptureMaxSamples = d.opt.CaptureMaxSamples
		scfg.OnDetectionCapture = func(det core.Detection, span iq.Interval, burst iq.Samples) {
			d.hub.DetectionCaptured(st, det, span, burst)
		}
	} else {
		scfg.OnDetection = func(det core.Detection) { d.hub.Detection(st, det) }
	}
	scfg.OnOutput = func(item flowgraph.Item) {
		if p, ok := item.(demod.Packet); ok {
			d.hub.Packet(st, p)
		}
	}
	scfg.OnSessionStart = func(id uint64) { d.hub.SessionStarted(st, ep, id) }
	scfg.OnSessionEnd = func(id uint64, res *core.Result, err error) {
		d.hub.SessionEnded(st, ep, res, err)
	}

	sess, err := d.opt.Engine.NewSession(scfg)
	if err != nil {
		d.hub.SessionEnded(st, ep, nil, err)
		d.logf("ingest %s: session: %v", c.RemoteAddr(), err)
		return
	}

	var src core.BlockReader = c
	if d.faultCfg != nil {
		injector := faults.NewInjector(src, *d.faultCfg)
		injector.InstrumentMetrics(d.reg)
		src = &faults.Retry{Src: injector, Attempts: d.opt.Retries, Metrics: d.reg}
	}
	var tiles *tileBuilder
	if d.opt.TileSamples > 0 {
		tiles = newTileBuilder(d.hub, st, d.opt.TileSamples, d.opt.TileBins)
	}
	if st.ring != nil || tiles != nil {
		src = &teeSource{inner: src, ring: st.ring, tiles: tiles}
	}
	src = &drainSource{inner: src, stop: &d.draining}

	if _, err := sess.Run(src); err != nil {
		if isTimeout(err) {
			// The idle reaper fired: the connection went this long with
			// neither data nor a heartbeat — a missed-heartbeat death.
			d.hbMissed.Inc()
		}
		d.logf("ingest %s: stream %d failed: %v", c.RemoteAddr(), st.ID(), err)
		return
	}
	counts := c.Counts()
	d.logf("ingest %s: stream %d closed (%d frames, %d samples, clean=%v)",
		c.RemoteAddr(), st.ID(), counts.Frames, counts.Samples, counts.CleanEnd)
}

// isTimeout reports whether err is (or wraps) a read-deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// teeSource copies every block the pipeline reads into the stream's
// waterfall ring and folds it into the persisted tile builder. It sits
// after fault injection so both show the stream the detectors actually
// saw.
type teeSource struct {
	inner core.BlockReader
	ring  *sampleRing
	tiles *tileBuilder
}

func (t *teeSource) ReadBlock(dst iq.Samples) (int, error) {
	n, err := t.inner.ReadBlock(dst)
	if n > 0 {
		if t.ring != nil {
			t.ring.Append(dst[:n])
		}
		if t.tiles != nil {
			t.tiles.Append(dst[:n])
		}
	}
	return n, err
}

// drainSource converts transport errors after a drain into clean EOF:
// Drain nudges blocked reads with an expired deadline, and the
// resulting timeout must end the session gracefully (results intact),
// not as a failure.
type drainSource struct {
	inner core.BlockReader
	stop  *atomic.Bool
}

func (s *drainSource) ReadBlock(dst iq.Samples) (int, error) {
	if s.stop.Load() {
		return 0, io.EOF
	}
	n, err := s.inner.ReadBlock(dst)
	if err != nil && !errors.Is(err, io.EOF) && s.stop.Load() {
		return n, io.EOF
	}
	return n, err
}
