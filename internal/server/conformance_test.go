package server

import (
	"testing"

	"rfdump/internal/metrics"
	"rfdump/internal/serving/conformance"
)

// TestServingConformance runs the shared-surface contract suite
// against a primed rfdumpd daemon — the node tier's half of the
// guarantee that both tiers serve an identical API (the aggregator
// runs the same suite in internal/cluster).
func TestServingConformance(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	// Quota sized so the suite's pagination walk fits in the burst but
	// its hammer loop does not.
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{QueryRPS: 50, QueryBurst: 50})
	streamTrace(t, ln, ts, res, 1)

	var recent struct {
		Detections []DetectionRecord `json:"detections"`
	}
	getJSON(t, ts.URL+"/api/detections", &recent)
	if len(recent.Detections) == 0 {
		t.Fatal("no detections; trace too quiet")
	}

	conformance.Run(t, ts.URL, conformance.Options{
		MinDetections: len(recent.Detections),
		StreamID:      0,
		Quota:         true,
	})
}
