package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/metrics"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/trace"
	"rfdump/internal/wire"
)

func wifiAddr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

// testTrace emulates a short WiFi ping exchange — enough bursts for
// detections and decodable packets, small enough to stream in a test.
func testTrace(t *testing.T) *ether.Result {
	t.Helper()
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  3,
		Sources: []mac.Source{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: 4, PayloadBytes: 200,
			InterPing: 8000, Requester: wifiAddr(0x11), Responder: wifiAddr(0x22),
			BSSID: wifiAddr(0x33), CFOHz: 2500,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sliceSrc is the offline reference BlockReader.
type sliceSrc struct {
	s   iq.Samples
	pos int
}

func (r *sliceSrc) ReadBlock(dst iq.Samples) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(dst, r.s[r.pos:])
	r.pos += n
	if r.pos >= len(r.s) {
		return n, io.EOF
	}
	return n, nil
}

// newTestDaemon builds an engine + daemon around the test trace's clock.
func newTestDaemon(t *testing.T, clock iq.Clock, reg *metrics.Registry, opt Options) (*Daemon, net.Listener, *httptest.Server) {
	t.Helper()
	cfg, err := core.ParseDetectors("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(clock, cfg, func() core.Analyzer { return demod.NewWiFiDemod() })
	opt.Engine = eng
	opt.Registry = reg
	d, err := NewDaemon(opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(ln) }()
	ts := httptest.NewServer(d.APIHandler())
	t.Cleanup(func() {
		ts.Close()
		d.Close()
	})
	return d, ln, ts
}

// getJSON fetches url and decodes the body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// waitStreamsDone polls /api/streams until want streams exist and none
// are active.
func waitStreamsDone(t *testing.T, baseURL string, want int) []StreamInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var body struct {
			Streams []StreamInfo `json:"streams"`
		}
		getJSON(t, baseURL+"/api/streams", &body)
		if len(body.Streams) >= want {
			done := true
			for _, st := range body.Streams {
				if st.Active {
					done = false
				}
			}
			if done {
				return body.Streams
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams never finished: %+v", body.Streams)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonLoopbackMatchesOffline is the end-to-end acceptance test:
// the same trace streamed over the wire protocol into the daemon must
// produce detections and packets identical to the offline streaming
// run, and the live SSE feed must carry every one of them.
func TestDaemonLoopbackMatchesOffline(t *testing.T) {
	res := testTrace(t)

	// Offline reference: same detectors, same analyzer, same chunking.
	cfg, err := core.ParseDetectors("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewPipeline(res.Clock, cfg, demod.NewWiFiDemod()).
		RunStream(&sliceSrc{s: res.Samples}, core.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var refPackets []demod.Packet
	for _, item := range ref.Outputs {
		if p, ok := item.(demod.Packet); ok {
			refPackets = append(refPackets, p)
		}
	}
	if len(ref.Detections) == 0 || len(refPackets) == 0 {
		t.Fatalf("weak reference run: %d detections, %d packets", len(ref.Detections), len(refPackets))
	}

	reg := metrics.NewRegistry()
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{})

	// Live feed first, so stream-open is observed: read events until
	// stream-close.
	type liveResult struct {
		events []Event
		err    error
	}
	liveCh := make(chan liveResult, 1)
	liveResp, err := http.Get(ts.URL + "/api/live")
	if err != nil {
		t.Fatal(err)
	}
	defer liveResp.Body.Close()
	sc := bufio.NewScanner(liveResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("no SSE preamble (got %q)", sc.Text())
	}
	go func() {
		var out liveResult
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev Event
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				out.err = err
				break
			}
			out.events = append(out.events, ev)
			if ev.Type == "stream-close" {
				break
			}
		}
		liveCh <- out
	}()

	// Stream the trace over the wire protocol.
	client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{
		StreamID: 7, Rate: res.Clock.Rate, CenterHz: 2_437_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendSamples(res.Samples); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	var live liveResult
	select {
	case live = <-liveCh:
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for stream-close on /api/live")
	}
	if live.err != nil {
		t.Fatalf("live feed: %v", live.err)
	}

	streams := waitStreamsDone(t, ts.URL, 1)
	if len(streams) != 1 {
		t.Fatalf("streams: %+v", streams)
	}
	st := streams[0]
	if st.Error != "" || !st.Wire.CleanEnd || st.Meta.StreamID != 7 {
		t.Errorf("stream state: %+v", st)
	}
	if st.Wire.Samples != int64(len(res.Samples)) {
		t.Errorf("wire samples %d, want %d", st.Wire.Samples, len(res.Samples))
	}

	// Detections identical to the offline run.
	var dets struct {
		Detections []DetectionRecord `json:"detections"`
	}
	getJSON(t, ts.URL+"/api/detections", &dets)
	if len(dets.Detections) != len(ref.Detections) {
		t.Fatalf("daemon %d detections, offline %d", len(dets.Detections), len(ref.Detections))
	}
	for i, got := range dets.Detections {
		want := ref.Detections[i]
		if got.Start != int64(want.Span.Start) || got.End != int64(want.Span.End) ||
			got.Detector != want.Detector || got.Family != want.Family.FamilyName() ||
			got.Confidence != want.Confidence {
			t.Errorf("detection %d: got %+v, want %v", i, got, want)
		}
	}

	// Packets identical, in the shared trace.PacketRecord schema.
	var pkts struct {
		Packets []PacketEvent `json:"packets"`
	}
	getJSON(t, ts.URL+"/api/packets", &pkts)
	if len(pkts.Packets) != len(refPackets) {
		t.Fatalf("daemon %d packets, offline %d", len(pkts.Packets), len(refPackets))
	}
	for i, got := range pkts.Packets {
		want := trace.NewPacketRecord(res.Clock, refPackets[i])
		if got.PacketRecord != want {
			t.Errorf("packet %d: got %+v, want %+v", i, got.PacketRecord, want)
		}
	}

	// The live feed carried every detection and packet, framed by
	// stream-open/stream-close.
	var liveDet, livePkt, open, closed int
	for _, ev := range live.events {
		switch ev.Type {
		case "detection":
			liveDet++
		case "packet":
			livePkt++
		case "stream-open":
			open++
		case "stream-close":
			closed++
		}
	}
	if open != 1 || closed != 1 {
		t.Errorf("live open/close = %d/%d, want 1/1", open, closed)
	}
	if liveDet != len(ref.Detections) || livePkt != len(refPackets) {
		t.Errorf("live feed %d detections / %d packets, want %d / %d",
			liveDet, livePkt, len(ref.Detections), len(refPackets))
	}

	// Waterfall renders from the stream's sample ring.
	var wf waterfallResponse
	getJSON(t, ts.URL+"/api/waterfall", &wf)
	if wf.Stream != st.ID || wf.Waterfall.Rows == 0 || wf.TotalSamples != int64(len(res.Samples)) {
		t.Errorf("waterfall: %+v", wf)
	}

	// Metrics surface the daemon counters.
	var snap metrics.Snapshot
	getJSON(t, ts.URL+"/api/metricz?format=json", &snap)
	if snap.Counters["server/detections"] != int64(len(ref.Detections)) {
		t.Errorf("metricz server/detections = %d, want %d",
			snap.Counters["server/detections"], len(ref.Detections))
	}
	if snap.Counters["server/packets"] != int64(len(refPackets)) {
		t.Errorf("metricz server/packets = %d, want %d",
			snap.Counters["server/packets"], len(refPackets))
	}
	if _, ok := snap.Gauges["blocks/pool/live"]; !ok {
		t.Error("metricz missing blocks/pool gauges")
	}
}

// TestSlowSubscriberDoesNotBlockIngest pins the backpressure contract:
// a live-feed subscriber that never reads must not stall the sample
// path — ingest completes, events are dropped for that subscriber, and
// the drops are visible in /api/metricz.
func TestSlowSubscriberDoesNotBlockIngest(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	d, ln, ts := newTestDaemon(t, res.Clock, reg, Options{SubscriberQueue: 2})

	// A subscriber that never drains its queue (the broker half of a
	// stalled SSE client; handleLive's writer is just such a drain).
	stuck := d.Hub().Broker().Subscribe()
	defer d.Hub().Broker().Unsubscribe(stuck)

	client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{StreamID: 1, Rate: res.Clock.Rate})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		if err := client.SendSamples(res.Samples); err != nil {
			done <- err
			return
		}
		done <- client.Close()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ingest blocked by a slow subscriber")
	}
	streams := waitStreamsDone(t, ts.URL, 1)
	if streams[0].Error != "" {
		t.Fatalf("session failed: %+v", streams[0])
	}
	if streams[0].Detections == 0 {
		t.Fatal("no detections — trace too quiet to exercise the feed")
	}
	if got := stuck.Dropped(); got == 0 {
		t.Error("stuck subscriber dropped nothing; queue bound not enforced")
	}

	var snap metrics.Snapshot
	getJSON(t, ts.URL+"/api/metricz?format=json", &snap)
	if snap.Counters["server/sse/dropped_events"] == 0 {
		t.Error("metricz dropped_events is zero")
	}
	// And the text rendering carries the same counter for operators.
	resp, err := http.Get(ts.URL + "/api/metricz")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "server/sse/dropped_events") {
		t.Errorf("text metricz missing dropped_events:\n%s", text)
	}
}

// TestDaemonRejectsRateMismatch: a transmitter at the wrong sample rate
// is refused (detector math is clock-specific) and counted.
func TestDaemonRejectsRateMismatch(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := iq.NewClock(0)
	_, ln, ts := newTestDaemon(t, clock, reg, Options{})

	client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{StreamID: 9, Rate: clock.Rate / 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = client.SendSamples(make(iq.Samples, 1024))
	_ = client.Close()

	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("server/ingest/rejected").Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejection never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var body struct {
		Streams []StreamInfo `json:"streams"`
	}
	getJSON(t, ts.URL+"/api/streams", &body)
	if len(body.Streams) != 0 {
		t.Errorf("rejected stream registered: %+v", body.Streams)
	}
}

// TestDaemonDrain: Drain with a live, idle ingest connection must nudge
// the blocked read, end the session cleanly, and keep results
// queryable.
func TestDaemonDrain(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	d, ln, ts := newTestDaemon(t, res.Clock, reg, Options{})

	client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{StreamID: 2, Rate: res.Clock.Rate})
	if err != nil {
		t.Fatal(err)
	}
	// Send the trace but no End frame: the connection stays open, the
	// daemon blocks in a frame read.
	if err := client.SendSamples(res.Samples); err != nil {
		t.Fatal(err)
	}
	// Wait until the daemon has consumed the samples.
	deadline := time.Now().Add(20 * time.Second)
	for {
		var body struct {
			Streams []StreamInfo `json:"streams"`
		}
		getJSON(t, ts.URL+"/api/streams", &body)
		if len(body.Streams) == 1 && body.Streams[0].Wire.Samples == int64(len(res.Samples)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never consumed the trace: %+v", body.Streams)
		}
		time.Sleep(10 * time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { d.Drain(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(20 * time.Second):
		t.Fatal("Drain hung on an idle ingest connection")
	}
	streams := waitStreamsDone(t, ts.URL, 1)
	if streams[0].Error != "" {
		t.Errorf("drained session reported failure: %+v", streams[0])
	}
	if streams[0].Detections == 0 {
		t.Error("drained session lost its detections")
	}
}
