package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"rfdump/internal/chaos"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/mac"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
	"rfdump/internal/wire"
)

// httpStatus fetches url and returns the status code plus decoded body
// (tolerating non-200, unlike getJSON).
func httpStatus(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// waitStatus polls url until it returns the wanted status code.
func waitStatus(t *testing.T, url string, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if code := httpStatus(t, url, nil); code == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never returned %d within %v", url, want, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHealthEndpoints drives the liveness and readiness probes through
// their full cycle: ok → stalled (ingest silent past the threshold) →
// recovered (a heartbeat, no data needed) → draining.
func TestHealthEndpoints(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	d, ln, ts := newTestDaemon(t, res.Clock, reg, Options{StallAfter: 150 * time.Millisecond})

	var h healthResponse
	if code := httpStatus(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz with no streams = %d, want 200", code)
	}
	if code := httpStatus(t, ts.URL+"/readyz", &h); code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}

	client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{
		StreamID: 4, Rate: res.Clock.Rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Abort()
	if err := client.SendFrame(res.Samples[:4096]); err != nil {
		t.Fatal(err)
	}

	// The stream is live and fed: healthy. Then it goes silent; within
	// the stall threshold (plus polling slack) the probe must flip 503.
	if code := httpStatus(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz with fresh frames = %d, want 200", code)
	}
	waitStatus(t, ts.URL+"/healthz", http.StatusServiceUnavailable, 2*time.Second)
	var stalled healthResponse
	httpStatus(t, ts.URL+"/healthz", &stalled)
	if stalled.Status != "stalled" || len(stalled.Stalled) != 1 {
		t.Fatalf("stalled body = %+v, want status=stalled with one entry", stalled)
	}
	if stalled.Stalled[0].SilentS <= 0.1 {
		t.Errorf("stalled silent_s = %v, want > stall threshold", stalled.Stalled[0].SilentS)
	}

	// A heartbeat alone (no samples) proves life and restores 200.
	if err := client.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts.URL+"/healthz", http.StatusOK, 2*time.Second)

	// Draining flips readiness, not liveness.
	go d.Drain()
	waitStatus(t, ts.URL+"/readyz", http.StatusServiceUnavailable, 5*time.Second)
	var ready healthResponse
	httpStatus(t, ts.URL+"/readyz", &ready)
	if ready.Status != "draining" || !ready.Draining {
		t.Fatalf("readyz body = %+v, want draining", ready)
	}
}

// TestSlowSubscriberEvicted pins the bounded-lag rule: a subscriber
// that keeps dropping is unsubscribed by the broker (channel closed,
// eviction counted) instead of holding its queue forever, while a
// subscriber that keeps consuming stays.
func TestSlowSubscriberEvicted(t *testing.T) {
	reg := metrics.NewRegistry()
	b := NewBroker(2, 4, reg)
	slow := b.Subscribe()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Seq: uint64(i), Type: "detection"})
	}
	if !slow.Evicted() {
		t.Fatal("subscriber with 8 consecutive drops not evicted")
	}
	// Queue still holds the oldest 2 events, then closes.
	var got int
	for range slow.Events() {
		got++
	}
	if got != 2 {
		t.Errorf("drained %d events from evicted queue, want 2", got)
	}
	if n := reg.Counter("server/conns_evicted").Load(); n != 1 {
		t.Errorf("server/conns_evicted = %d, want 1", n)
	}

	// A consuming subscriber never accumulates enough consecutive drops.
	ok := b.Subscribe()
	for i := 0; i < 50; i++ {
		b.Publish(Event{Seq: uint64(i), Type: "detection"})
		select {
		case <-ok.Events():
		default:
		}
	}
	if ok.Evicted() {
		t.Error("consuming subscriber was evicted")
	}
	b.Unsubscribe(ok)
}

// TestReconnectStitchingAccounting reconnects by hand with a resume
// ledger that declares a known 1000-sample outage and checks the hub
// stitches one stream, prices exactly that gap, and reports it through
// every surface: /api/streams, /api/metricz, and absolute detection
// spans.
func TestReconnectStitchingAccounting(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{})

	meta := wire.StreamMeta{StreamID: 7, Rate: res.Clock.Rate, CenterHz: 2_437_000_000}
	half := (len(res.Samples) / 2 / 4096) * 4096

	c1, err := wire.Dial(ln.Addr().String(), meta)
	if err != nil {
		t.Fatal(err)
	}
	c1.SetFrameSamples(4096)
	if err := c1.SendSamples(res.Samples[:half]); err != nil {
		t.Fatal(err)
	}
	sent1, frames1 := c1.SamplesSent(), c1.FramesSent()
	if err := c1.Abort(); err != nil { // crash, no End frame
		t.Fatal(err)
	}

	// Wait for the first session to finish draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var body struct {
			Streams []StreamInfo `json:"streams"`
		}
		getJSON(t, ts.URL+"/api/streams", &body)
		if len(body.Streams) == 1 && !body.Streams[0].Active {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first epoch never drained: %+v", body.Streams)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reconnect claiming 1000 samples more than were delivered: the
	// outage the daemon must price.
	const lost = 1000
	c2, err := wire.Dial(ln.Addr().String(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.SendResume(wire.ResumeInfo{
		Epoch:       1,
		SentFrames:  uint64(frames1),
		SentSamples: uint64(sent1) + lost,
	}); err != nil {
		t.Fatal(err)
	}
	c2.SetFrameSamples(4096)
	if err := c2.SendSamples(res.Samples[half:]); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// The daemon processes c2's resume asynchronously: the stream can
	// look idle after the first epoch drains but before the stitch
	// lands, so wait for the stitched epoch itself, not mere idleness.
	var st StreamInfo
	deadline = time.Now().Add(30 * time.Second)
	for {
		streams := waitStreamsDone(t, ts.URL, 1)
		if len(streams) != 1 {
			t.Fatalf("got %d streams, want 1 (reconnect must stitch, not fork)", len(streams))
		}
		st = streams[0]
		if st.Epoch == 1 && st.Reconnects == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resume never stitched: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.GapSamples != lost {
		t.Errorf("GapSamples = %d, want %d", st.GapSamples, lost)
	}
	if len(st.Gaps) != 1 {
		t.Fatalf("gaps = %+v, want exactly one record", st.Gaps)
	}
	g := st.Gaps[0]
	if g.Epoch != 1 || g.Samples != lost || g.AtSample != sent1 {
		t.Errorf("gap = %+v, want epoch=1 samples=%d at=%d", g, lost, sent1)
	}
	if st.Wire.Samples != sent1+int64(len(res.Samples))-int64(half) {
		t.Errorf("Wire.Samples = %d, want %d delivered", st.Wire.Samples, sent1+int64(len(res.Samples))-int64(half))
	}
	if !st.Wire.CleanEnd {
		t.Error("stitched stream did not end cleanly")
	}
	if len(st.Epochs) != 2 {
		t.Fatalf("epochs = %+v, want 2", st.Epochs)
	}
	if st.Epochs[1].StartOffset != sent1+lost {
		t.Errorf("epoch 1 start offset = %d, want %d", st.Epochs[1].StartOffset, sent1+lost)
	}

	// Absolute spans: epoch-1 detections sit on the transmit timeline,
	// offset by everything epoch 0 carried plus the gap.
	var dets struct {
		Detections []DetectionRecord `json:"detections"`
	}
	getJSON(t, fmt.Sprintf("%s/api/detections?stream=%d", ts.URL, st.ID), &dets)
	if len(dets.Detections) == 0 {
		t.Fatal("no detections recorded")
	}
	base := sent1 + lost
	var sawEpoch1 bool
	for _, rec := range dets.Detections {
		if rec.Epoch != 1 {
			continue
		}
		sawEpoch1 = true
		if rec.AbsStart != rec.Start+base || rec.AbsEnd != rec.End+base {
			t.Errorf("epoch-1 detection abs span (%d,%d), want (%d,%d)",
				rec.AbsStart, rec.AbsEnd, rec.Start+base, rec.End+base)
		}
	}
	if !sawEpoch1 {
		t.Error("no epoch-1 detections; second half produced nothing")
	}

	var snap metrics.Snapshot
	getJSON(t, ts.URL+"/api/metricz?format=json", &snap)
	if snap.Counters["wire/reconnects"] != 1 {
		t.Errorf("metricz wire/reconnects = %d, want 1", snap.Counters["wire/reconnects"])
	}
	if snap.Counters["wire/gap_samples"] != lost {
		t.Errorf("metricz wire/gap_samples = %d, want %d", snap.Counters["wire/gap_samples"], lost)
	}
}

// soakTrace is a longer exchange than testTrace — enough bursts that
// forced disconnects land between (and inside) packets.
func soakTrace(t *testing.T) *ether.Result {
	t.Helper()
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  3,
		Sources: []mac.Source{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: 8, PayloadBytes: 300,
			InterPing: 8000, Requester: wifiAddr(0x11), Responder: wifiAddr(0x22),
			BSSID: wifiAddr(0x33), CFOHz: 2500,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosSoakLedger is the acceptance test for the resilience layer:
// a ReconnectClient streams a trace through a chaos proxy that injects
// latency, at least three forced mid-stream disconnects, and one full
// partition. The client must reconnect on its own, and afterwards the
// end-to-end ledger must balance exactly — samples delivered plus gaps
// accounted equals samples transmitted, zero silent loss — and every
// offline detection must be either reproduced or attributable to an
// accounted gap or an epoch boundary.
func TestChaosSoakLedger(t *testing.T) {
	res := soakTrace(t)

	// Offline reference: what a lossless run detects.
	cfg, err := core.ParseDetectors("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewPipeline(res.Clock, cfg, demod.NewWiFiDemod()).
		RunStream(&sliceSrc{s: res.Samples}, core.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Detections) < 4 {
		t.Fatalf("weak reference run: %d detections", len(ref.Detections))
	}

	reg := metrics.NewRegistry()
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{
		IdleTimeout: 2 * time.Second,
		StallAfter:  500 * time.Millisecond,
	})

	proxy := chaos.New(ln.Addr().String(), chaos.Config{
		Latency: 50 * time.Microsecond,
		Jitter:  25 * time.Microsecond,
		Seed:    5,
	})
	addr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rc := wire.NewReconnectClient(addr, wire.StreamMeta{
		StreamID: 21, Rate: res.Clock.Rate, CenterHz: 2_437_000_000,
	}, wire.ReconnectConfig{
		DialTimeout:  time.Second,
		WriteTimeout: 300 * time.Millisecond,
		MinBackoff:   2 * time.Millisecond,
		MaxBackoff:   30 * time.Millisecond,
		Heartbeat:    50 * time.Millisecond,
		FrameSamples: 1024,
		Seed:         9,
		Metrics:      reg,
	})

	const frameSamples = 1024
	nFrames := (len(res.Samples) + frameSamples - 1) / frameSamples
	// Three forced disconnects spread through the stream, one partition
	// at 70%. A scheduled drop that finds no live link (the proxy has
	// not re-accepted yet, or the client is still down) retries on the
	// next frame.
	dropsWanted := 3
	dropsDone := 0
	nextDrop := nFrames / 5
	partitionAt := nFrames * 7 / 10
	partitionHealed := make(chan struct{})
	partitioned := false

	for i := 0; i < nFrames; i++ {
		// Pace near the trace's real-time rate: an unpaced loop outruns
		// the proxy by orders of magnitude, and every fault just lands
		// in kernel buffers instead of a live link.
		time.Sleep(150 * time.Microsecond)
		if dropsDone < dropsWanted && i >= nextDrop {
			if proxy.DropActive() > 0 {
				dropsDone++
				nextDrop = i + nFrames/5
			}
		}
		if !partitioned && i >= partitionAt {
			partitioned = true
			proxy.Partition(true)
			go func() {
				time.Sleep(250 * time.Millisecond)
				proxy.Partition(false)
				close(partitionHealed)
			}()
		}
		lo := i * frameSamples
		hi := lo + frameSamples
		if hi > len(res.Samples) {
			hi = len(res.Samples)
		}
		if err := rc.SendFrame(res.Samples[lo:hi]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if partitioned {
		<-partitionHealed
	}
	if err := rc.End(); err != nil {
		t.Logf("End: %v (dirty end is acceptable; ledger must still balance)", err)
	}
	stats := rc.Stats()
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	stats = rc.Stats()

	if dropsDone < dropsWanted {
		t.Fatalf("only %d forced disconnects landed, want %d", dropsDone, dropsWanted)
	}
	if stats.Reconnects < int64(dropsWanted) {
		t.Fatalf("client reconnected %d times, want >= %d", stats.Reconnects, dropsWanted)
	}

	streams := waitStreamsDone(t, ts.URL, 1)
	if len(streams) != 1 {
		t.Fatalf("got %d streams, want 1: reconnects must stitch into one stream", len(streams))
	}
	st := streams[0]

	// The resilience claim, exactly: delivered + accounted gaps =
	// transmitted. Nothing silently lost, nothing double-counted.
	transmitted := int64(stats.SentSamples + stats.DroppedSamples)
	accounted := st.Wire.Samples + st.GapSamples
	if accounted != transmitted {
		t.Errorf("delivered %d + gaps %d = %d, want exactly %d transmitted (%+v)",
			st.Wire.Samples, st.GapSamples, accounted, transmitted, st.Gaps)
	}
	if int64(st.Reconnects) != stats.Reconnects {
		t.Errorf("hub saw %d reconnects, client made %d", st.Reconnects, stats.Reconnects)
	}

	// Every offline detection of the trace's actual traffic (802.11b) is
	// delivered or attributable: matched by family and absolute
	// position, or overlapping an accounted gap, or cut by an epoch
	// boundary (a reconnect splits the session even when it loses
	// nothing). Cross-family verdicts (the phase detector sometimes
	// reads a WiFi burst as Bluetooth) are detector-state-sensitive and
	// not part of the delivery claim.
	const matchTol = 4096
	const cutMargin = 65536
	var dets struct {
		Detections []DetectionRecord `json:"detections"`
	}
	getJSON(t, fmt.Sprintf("%s/api/detections?stream=%d", ts.URL, st.ID), &dets)
	matched, checked := 0, 0
	for _, want := range ref.Detections {
		if want.Family.FamilyName() != "802.11b" {
			continue
		}
		checked++
		refStart := int64(want.Span.Start)
		refEnd := int64(want.Span.End)
		ok := false
		for _, got := range dets.Detections {
			if got.Family == want.Family.FamilyName() &&
				got.AbsStart >= refStart-matchTol && got.AbsStart <= refStart+matchTol {
				ok = true
				break
			}
		}
		if ok {
			matched++
			continue
		}
		excused := false
		for _, g := range st.Gaps {
			if refEnd >= g.AtSample-cutMargin && refStart <= g.AtSample+g.Samples+cutMargin {
				excused = true
				break
			}
		}
		for _, ep := range st.Epochs {
			if ep.StartOffset > 0 &&
				refEnd >= ep.StartOffset-cutMargin && refStart <= ep.StartOffset+cutMargin {
				excused = true
				break
			}
		}
		if !excused {
			t.Errorf("detection %s@%d lost outside any accounted gap or epoch cut (gaps %+v, epochs %+v)",
				want.Family.FamilyName(), refStart, st.Gaps, st.Epochs)
		}
	}
	if matched == 0 || checked == 0 {
		t.Errorf("no offline detection survived the chaos run at all (%d checked)", checked)
	}
	t.Logf("soak: %d/%d 802.11b detections matched, %d reconnects, %d gap samples over %d transmitted, %d heartbeats",
		matched, checked, st.Reconnects, st.GapSamples, transmitted, stats.HeartbeatsSent)

	// With the stream over, liveness must have recovered.
	if code := httpStatus(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz after soak = %d, want 200", code)
	}
}

// TestRetryComposedWithChaos runs signal-path fault injection
// (faults.Retry over a transient-error injector) and network-path chaos
// (proxy resets + reconnecting client) at the same time: the two
// resilience layers must compose without masking each other.
func TestRetryComposedWithChaos(t *testing.T) {
	res := testTrace(t)
	reg := metrics.NewRegistry()
	_, ln, ts := newTestDaemon(t, res.Clock, reg, Options{
		Faults:  "transient=0.02,seed=7",
		Retries: 4,
	})

	proxy := chaos.New(ln.Addr().String(), chaos.Config{
		Latency: 100 * time.Microsecond,
		Seed:    11,
	})
	addr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rc := wire.NewReconnectClient(addr, wire.StreamMeta{
		StreamID: 13, Rate: res.Clock.Rate,
	}, wire.ReconnectConfig{
		DialTimeout:  time.Second,
		WriteTimeout: 300 * time.Millisecond,
		MinBackoff:   2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		FrameSamples: 1024,
		Seed:         3,
		Metrics:      reg,
	})

	const frameSamples = 1024
	nFrames := (len(res.Samples) + frameSamples - 1) / frameSamples
	drops := 0
	nextDrop := nFrames / 3
	for i := 0; i < nFrames; i++ {
		time.Sleep(150 * time.Microsecond) // keep the proxy on a live link
		if drops < 2 && i >= nextDrop {
			if proxy.DropActive() > 0 {
				drops++
				nextDrop = i + nFrames/3
			}
		}
		lo := i * frameSamples
		hi := lo + frameSamples
		if hi > len(res.Samples) {
			hi = len(res.Samples)
		}
		if err := rc.SendFrame(res.Samples[lo:hi]); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	_ = rc.End()
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	stats := rc.Stats()
	if drops < 2 || stats.Reconnects < 2 {
		t.Fatalf("drops=%d reconnects=%d, want >= 2 each", drops, stats.Reconnects)
	}

	streams := waitStreamsDone(t, ts.URL, 1)
	st := streams[0]
	transmitted := int64(stats.SentSamples + stats.DroppedSamples)
	if st.Wire.Samples+st.GapSamples != transmitted {
		t.Errorf("delivered %d + gaps %d != transmitted %d",
			st.Wire.Samples, st.GapSamples, transmitted)
	}
	if st.Detections == 0 {
		t.Error("no detections under composed faults")
	}

	var snap metrics.Snapshot
	getJSON(t, ts.URL+"/api/metricz?format=json", &snap)
	if snap.Counters["faults/injected/transient_errors"] == 0 {
		t.Error("no transient errors injected; spec not applied")
	}
	if snap.Counters["faults/recovered"] == 0 {
		t.Error("faults/recovered is zero: Retry never recovered a transient")
	}
	if snap.Counters["faults/exhausted"] != 0 {
		t.Errorf("faults/exhausted = %d, want 0 (retries must absorb transients)",
			snap.Counters["faults/exhausted"])
	}
	if snap.Counters["wire/reconnects"] < 2 {
		t.Errorf("metricz wire/reconnects = %d, want >= 2", snap.Counters["wire/reconnects"])
	}
}
