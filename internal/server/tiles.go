package server

import (
	"rfdump/internal/history"
	"rfdump/internal/iq"
)

// tileBuilder folds the ingest sample flow into coarse waterfall tiles
// for the history store: one tile per span samples, each bin the mean
// linear power of perBin consecutive samples. It runs on the ingest
// goroutine between block reads (like the waterfall ring tee), so the
// per-sample work is one multiply-accumulate; the only allocation is
// the bins slice handed to the store, once per tile (~65 ms).
type tileBuilder struct {
	hub    *Hub
	st     *Stream
	span   int // samples per tile (perBin * bins exactly)
	bins   int
	perBin int
	acc    []float64
	n      int   // samples folded into the current tile
	off    int64 // epoch-relative offset of the current tile's first sample
}

func newTileBuilder(hub *Hub, st *Stream, span, bins int) *tileBuilder {
	if bins > span {
		bins = span
	}
	perBin := span / bins
	return &tileBuilder{
		hub: hub, st: st,
		span: perBin * bins, bins: bins, perBin: perBin,
		acc: make([]float64, bins),
	}
}

// Append folds the next span of the stream into the builder, flushing a
// tile to the store each time one fills.
func (t *tileBuilder) Append(s iq.Samples) {
	for _, v := range s {
		re, im := real(v), imag(v)
		t.acc[t.n/t.perBin] += float64(re*re + im*im)
		t.n++
		if t.n == t.span {
			t.flush()
		}
	}
}

func (t *tileBuilder) flush() {
	start := t.st.absBase.Load() + t.off
	bins := make([]float32, t.bins)
	for i, a := range t.acc {
		bins[i] = float32(a / float64(t.perBin))
		t.acc[i] = 0
	}
	t.hub.Tile(&history.Tile{
		Stream:        t.st.ID(),
		TimeS:         float64(start) / float64(t.hub.clock.Rate),
		Start:         start,
		SamplesPerBin: int64(t.perBin),
		Bins:          bins,
	})
	t.off += int64(t.span)
	t.n = 0
}
