package flowgraph

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

// appendBlock collects items; optionally transforms.
type appendBlock struct {
	name  string
	mu    sync.Mutex
	seen  []Item
	xform func(Item) []Item
	flush []Item
	fail  error
}

func (b *appendBlock) Name() string { return b.name }
func (b *appendBlock) Process(item Item, emit func(Item)) error {
	b.mu.Lock()
	b.seen = append(b.seen, item)
	b.mu.Unlock()
	if b.fail != nil {
		return b.fail
	}
	if b.xform != nil {
		for _, out := range b.xform(item) {
			emit(out)
		}
	} else {
		emit(item)
	}
	return nil
}
func (b *appendBlock) Flush(emit func(Item)) error {
	for _, item := range b.flush {
		emit(item)
	}
	return nil
}

func intSource(n int) func() (Item, bool) {
	i := 0
	return func() (Item, bool) {
		if i >= n {
			return nil, false
		}
		i++
		return i, true
	}
}

func TestLinearPipeline(t *testing.T) {
	g := New()
	a := &appendBlock{name: "a", xform: func(i Item) []Item { return []Item{i.(int) * 2} }}
	b := &appendBlock{name: "b"}
	g.MustAdd(a)
	g.MustAdd(b)
	g.MustConnect("a", "b")
	g.MustRoot("a")
	if err := g.Run(intSource(3)); err != nil {
		t.Fatal(err)
	}
	if len(b.seen) != 3 || b.seen[0] != 2 || b.seen[2] != 6 {
		t.Errorf("b saw %v", b.seen)
	}
}

func TestFanOut(t *testing.T) {
	g := New()
	src := &appendBlock{name: "src"}
	l := &appendBlock{name: "l"}
	r := &appendBlock{name: "r"}
	g.MustAdd(src)
	g.MustAdd(l)
	g.MustAdd(r)
	g.MustConnect("src", "l")
	g.MustConnect("src", "r")
	g.MustRoot("src")
	if err := g.Run(intSource(5)); err != nil {
		t.Fatal(err)
	}
	if len(l.seen) != 5 || len(r.seen) != 5 {
		t.Errorf("fanout: %d %d", len(l.seen), len(r.seen))
	}
}

func TestFlushPropagates(t *testing.T) {
	g := New()
	a := &appendBlock{name: "a", flush: []Item{"tail"}}
	b := &appendBlock{name: "b"}
	g.MustAdd(a)
	g.MustAdd(b)
	g.MustConnect("a", "b")
	g.MustRoot("a")
	if err := g.Run(intSource(1)); err != nil {
		t.Fatal(err)
	}
	if len(b.seen) != 2 || b.seen[1] != "tail" {
		t.Errorf("b saw %v", b.seen)
	}
}

func TestCycleRejected(t *testing.T) {
	g := New()
	g.MustAdd(&appendBlock{name: "a"})
	g.MustAdd(&appendBlock{name: "b"})
	g.MustConnect("a", "b")
	g.MustConnect("b", "a")
	g.MustRoot("a")
	if err := g.Run(intSource(1)); err == nil {
		t.Error("cycle accepted")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	g := New()
	g.MustAdd(&appendBlock{name: "a"})
	if err := g.Add(&appendBlock{name: "a"}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestUnknownBlockRejected(t *testing.T) {
	g := New()
	if err := g.Connect("x", "y"); err == nil {
		t.Error("unknown connect accepted")
	}
	if err := g.Root("x"); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestNoRoots(t *testing.T) {
	g := New()
	g.MustAdd(&appendBlock{name: "a"})
	if err := g.Run(intSource(1)); err == nil {
		t.Error("run without roots accepted")
	}
}

func TestErrorsPropagate(t *testing.T) {
	g := New()
	failErr := errors.New("boom")
	g.MustAdd(&appendBlock{name: "a", fail: failErr})
	g.MustRoot("a")
	err := g.Run(intSource(1))
	if err == nil || !errors.Is(err, failErr) {
		t.Errorf("err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := New()
	a := &appendBlock{name: "a"}
	g.MustAdd(a)
	g.MustRoot("a")
	if err := g.Run(intSource(10)); err != nil {
		t.Fatal(err)
	}
	stats := g.Stats()
	if len(stats) != 1 || stats[0].Items != 10 {
		t.Errorf("stats %v", stats)
	}
	if g.TotalBusy() <= 0 {
		t.Error("no busy time accounted")
	}
	g.ResetStats()
	if g.TotalBusy() != 0 {
		t.Error("reset failed")
	}
}

func TestBlockFunc(t *testing.T) {
	g := New()
	var got []int
	g.MustAdd(BlockFunc{Label: "f", Fn: func(item Item, emit func(Item)) error {
		got = append(got, item.(int))
		return nil
	}})
	g.MustRoot("f")
	if err := g.Run(intSource(2)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

func TestDiamondDelivery(t *testing.T) {
	// a -> b, a -> c, b -> d, c -> d: d sees each item twice.
	g := New()
	for _, n := range []string{"a", "b", "c"} {
		g.MustAdd(&appendBlock{name: n})
	}
	d := &appendBlock{name: "d"}
	g.MustAdd(d)
	g.MustConnect("a", "b")
	g.MustConnect("a", "c")
	g.MustConnect("b", "d")
	g.MustConnect("c", "d")
	g.MustRoot("a")
	if err := g.Run(intSource(3)); err != nil {
		t.Fatal(err)
	}
	if len(d.seen) != 6 {
		t.Errorf("d saw %d items, want 6", len(d.seen))
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	build := func() (*Graph, *appendBlock) {
		g := New()
		a := &appendBlock{name: "a", xform: func(i Item) []Item { return []Item{i.(int) + 100} }}
		b := &appendBlock{name: "b"}
		sink := &appendBlock{name: "sink"}
		g.MustAdd(a)
		g.MustAdd(b)
		g.MustAdd(sink)
		g.MustConnect("a", "b")
		g.MustConnect("b", "sink")
		g.MustRoot("a")
		return g, sink
	}
	g1, s1 := build()
	if err := g1.Run(intSource(50)); err != nil {
		t.Fatal(err)
	}
	g2, s2 := build()
	if err := g2.RunParallel(intSource(50), 8); err != nil {
		t.Fatal(err)
	}
	get := func(b *appendBlock) []int {
		out := make([]int, len(b.seen))
		for i, v := range b.seen {
			out[i] = v.(int)
		}
		sort.Ints(out)
		return out
	}
	v1, v2 := get(s1), get(s2)
	if len(v1) != len(v2) {
		t.Fatalf("counts differ: %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("values differ at %d: %d vs %d", i, v1[i], v2[i])
		}
	}
}

func TestRunParallelError(t *testing.T) {
	g := New()
	failErr := errors.New("bad block")
	g.MustAdd(&appendBlock{name: "a"})
	g.MustAdd(&appendBlock{name: "b", fail: failErr})
	g.MustConnect("a", "b")
	g.MustRoot("a")
	if err := g.RunParallel(intSource(10), 2); err == nil {
		t.Error("parallel error lost")
	}
}

func TestRunParallelUnconnectedBlock(t *testing.T) {
	// A block with no inputs must not deadlock the parallel scheduler.
	g := New()
	g.MustAdd(&appendBlock{name: "a"})
	g.MustAdd(&appendBlock{name: "orphan"})
	g.MustRoot("a")
	done := make(chan error, 1)
	go func() { done <- g.RunParallel(intSource(3), 2) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel run deadlocked")
	}
}
