package flowgraph

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// countSink records everything it receives.
type countSink struct {
	mu    sync.Mutex
	items []Item
}

func (s *countSink) Name() string { return "sink" }
func (s *countSink) Process(item Item, _ func(Item)) error {
	s.mu.Lock()
	s.items = append(s.items, item)
	s.mu.Unlock()
	return nil
}
func (s *countSink) Flush(func(Item)) error { return nil }

func (s *countSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// faultyBlock errors or panics on selected items, passing others through.
type faultyBlock struct {
	label   string
	failN   int  // fail the first N items
	doPanic bool // panic instead of returning an error
	seen    int
}

func (b *faultyBlock) Name() string { return b.label }
func (b *faultyBlock) Process(item Item, emit func(Item)) error {
	b.seen++
	if b.seen <= b.failN {
		if b.doPanic {
			panic(fmt.Sprintf("%s: injected panic on item %d", b.label, b.seen))
		}
		return fmt.Errorf("%s: injected error on item %d", b.label, b.seen)
	}
	emit(item)
	return nil
}
func (b *faultyBlock) Flush(func(Item)) error { return nil }

func statByName(stats []BlockStat, name string) BlockStat {
	for _, s := range stats {
		if s.Name == name {
			return s
		}
	}
	return BlockStat{}
}

// buildFanout wires src-like root into a faulty branch and a healthy
// branch, both feeding one sink.
func buildFanout(bad Block) (*Graph, *countSink) {
	g := New()
	g.MustAdd(BlockFunc{Label: "root", Fn: func(item Item, emit func(Item)) error {
		emit(item)
		return nil
	}})
	g.MustRoot("root")
	g.MustAdd(bad)
	g.MustAdd(BlockFunc{Label: "good", Fn: func(item Item, emit func(Item)) error {
		emit(item)
		return nil
	}})
	sink := &countSink{}
	g.MustAdd(sink)
	g.MustConnect("root", bad.Name())
	g.MustConnect("root", "good")
	g.MustConnect(bad.Name(), "sink")
	g.MustConnect("good", "sink")
	return g, sink
}

func TestUnsupervisedStillFailsFast(t *testing.T) {
	g, _ := buildFanout(&faultyBlock{label: "bad", failN: 1})
	if err := g.Run(intSource(10)); err == nil {
		t.Fatal("unsupervised run absorbed a block error")
	}
}

func TestSuperviseQuarantinesErroringBlock(t *testing.T) {
	bad := &faultyBlock{label: "bad", failN: 1000}
	g, sink := buildFanout(bad)
	var events []SupervisorEvent
	g.Supervise(SupervisorConfig{
		MaxErrors: 3,
		OnEvent:   func(ev SupervisorEvent) { events = append(events, ev) },
	})
	if err := g.Run(intSource(100)); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	// The healthy branch processed everything.
	if sink.count() != 100 {
		t.Errorf("sink saw %d items, want 100 from the healthy branch", sink.count())
	}
	st := statByName(g.Stats(), "bad")
	if !st.Quarantined || st.Trips != 1 {
		t.Errorf("bad block not quarantined exactly once: %+v", st)
	}
	if st.Errors != 3 {
		t.Errorf("bad block errors %d, want 3 (MaxErrors)", st.Errors)
	}
	if st.Dropped != 97 {
		t.Errorf("bad block dropped %d, want 97", st.Dropped)
	}
	if len(events) == 0 || events[len(events)-1].Kind != EventQuarantine {
		t.Errorf("events %v missing quarantine", events)
	}
	if q := g.Quarantined(); len(q) != 1 || q[0] != "bad" {
		t.Errorf("Quarantined() = %v", q)
	}
}

func TestSupervisePanicQuarantinesImmediately(t *testing.T) {
	bad := &faultyBlock{label: "bad", failN: 1000, doPanic: true}
	g, sink := buildFanout(bad)
	g.Supervise(SupervisorConfig{MaxErrors: 5})
	if err := g.Run(intSource(50)); err != nil {
		t.Fatalf("supervised run failed on panic: %v", err)
	}
	st := statByName(g.Stats(), "bad")
	if st.Panics != 1 || !st.Quarantined {
		t.Errorf("panic accounting wrong: %+v", st)
	}
	if st.Dropped != 49 {
		t.Errorf("dropped %d after immediate quarantine, want 49", st.Dropped)
	}
	if sink.count() != 50 {
		t.Errorf("healthy branch delivered %d/50", sink.count())
	}
}

func TestUnsupervisedPanicPropagates(t *testing.T) {
	bad := &faultyBlock{label: "bad", failN: 1, doPanic: true}
	g, _ := buildFanout(bad)
	defer func() {
		if recover() == nil {
			t.Error("panic swallowed without supervision")
		}
	}()
	_ = g.Run(intSource(10))
}

func TestSuperviseBackoffReadmits(t *testing.T) {
	// Fails the first 2 items, then recovers: with MaxErrors 1 it is
	// quarantined on item 1, readmitted after 5 drops, re-quarantined on
	// its next processed item (the second failure), readmitted again,
	// then healthy.
	bad := &faultyBlock{label: "bad", failN: 2}
	g, sink := buildFanout(bad)
	g.Supervise(SupervisorConfig{MaxErrors: 1, BackoffItems: 5})
	if err := g.Run(intSource(40)); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	st := statByName(g.Stats(), "bad")
	if st.Quarantined {
		t.Errorf("block still quarantined after recovery: %+v", st)
	}
	if st.Trips != 2 || st.Errors != 2 || st.Dropped != 10 {
		t.Errorf("backoff accounting: %+v (want trips=2 errors=2 dropped=10)", st)
	}
	// 40 items through good + (40 - 2 failed - 10 dropped) through bad.
	if want := 40 + 28; sink.count() != want {
		t.Errorf("sink saw %d items, want %d", sink.count(), want)
	}
}

func TestSuperviseMaxTripsPermanent(t *testing.T) {
	// Always fails: with backoff enabled but MaxTrips 2, the block gets
	// two probation cycles and is then out for good.
	bad := &faultyBlock{label: "bad", failN: 1 << 30}
	g, _ := buildFanout(bad)
	g.Supervise(SupervisorConfig{MaxErrors: 1, BackoffItems: 3, MaxTrips: 2})
	if err := g.Run(intSource(100)); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	st := statByName(g.Stats(), "bad")
	if st.Trips != 2 || !st.Quarantined {
		t.Errorf("MaxTrips not honored: %+v", st)
	}
	if st.Errors != 2 {
		t.Errorf("errors %d, want 2 (one per trip)", st.Errors)
	}
}

func TestSuperviseFlushErrorAbsorbed(t *testing.T) {
	g := New()
	g.MustAdd(BlockFunc{Label: "root", Fn: func(item Item, emit func(Item)) error {
		emit(item)
		return nil
	}})
	g.MustRoot("root")
	bad := &flushFaulter{}
	g.MustAdd(bad)
	g.MustConnect("root", "flush-bad")
	g.Supervise(SupervisorConfig{})
	if err := g.Run(intSource(3)); err != nil {
		t.Fatalf("supervised run failed on flush error: %v", err)
	}
	st := statByName(g.Stats(), "flush-bad")
	if st.Errors != 1 {
		t.Errorf("flush error not counted: %+v", st)
	}
}

type flushFaulter struct{}

func (f *flushFaulter) Name() string                   { return "flush-bad" }
func (f *flushFaulter) Process(Item, func(Item)) error { return nil }
func (f *flushFaulter) Flush(func(Item)) error         { return errors.New("flush boom") }

func TestSuperviseParallelSurvivesFaults(t *testing.T) {
	// The supervised policy must hold under the multi-threaded scheduler
	// (run with -race): a panicking branch and an erroring branch are
	// quarantined while the healthy branch delivers everything.
	bad := &faultyBlock{label: "bad", failN: 1 << 30}
	g, sink := buildFanout(bad)
	g.MustAdd(&faultyBlock{label: "panicky", failN: 1 << 30, doPanic: true})
	g.MustConnect("root", "panicky")
	g.MustConnect("panicky", "sink")
	g.Supervise(SupervisorConfig{MaxErrors: 2})
	if err := g.RunParallel(intSource(500), 16); err != nil {
		t.Fatalf("supervised parallel run failed: %v", err)
	}
	if sink.count() != 500 {
		t.Errorf("sink saw %d/500 items", sink.count())
	}
	stats := g.Stats()
	if st := statByName(stats, "bad"); !st.Quarantined || st.Errors != 2 {
		t.Errorf("bad: %+v", st)
	}
	if st := statByName(stats, "panicky"); !st.Quarantined || st.Panics != 1 {
		t.Errorf("panicky: %+v", st)
	}
	if st := statByName(stats, "good"); st.Items != 500 {
		t.Errorf("good processed %d/500", st.Items)
	}
}

func TestSuperviseParallelFailFastWithoutConfig(t *testing.T) {
	bad := &faultyBlock{label: "bad", failN: 1}
	g, _ := buildFanout(bad)
	if err := g.RunParallel(intSource(50), 8); err == nil {
		t.Fatal("unsupervised parallel run absorbed a block error")
	}
}
