package flowgraph

import (
	"fmt"
	"sync"
)

// RunParallel executes the graph with one goroutine per block connected by
// buffered channels — the "inherent parallelism that can be exploited
// using multi-threading" the paper notes as future work (Section 2.2).
// Semantics match Run: every source item enters every root; items flow
// along edges in order; Flush runs after a block's inputs close.
//
// Per-block busy time is still recorded (it then exceeds wall time on
// multicore machines, which is the point of the extension benchmark).
func (g *Graph) RunParallel(source func() (Item, bool), buffer int) error {
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	if len(g.roots) == 0 {
		return fmt.Errorf("flowgraph: no root blocks")
	}
	if buffer < 1 {
		buffer = 64
	}

	// Each node gets one input channel; fan-in is counted so the channel
	// closes only after all upstream blocks finish.
	inCh := make(map[*node]chan Item, len(g.nodes))
	fanIn := make(map[*node]int, len(g.nodes))
	for _, n := range g.nodes {
		inCh[n] = make(chan Item, buffer)
	}
	for _, n := range g.nodes {
		for _, o := range n.outs {
			fanIn[o]++
		}
	}
	for _, r := range g.roots {
		fanIn[r]++
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Downstream close bookkeeping: when a producer finishes, it
	// decrements each consumer's pending count; the last producer closes
	// the channel.
	var closeMu sync.Mutex
	pending := make(map[*node]int, len(g.nodes))
	for _, n := range g.nodes {
		pending[n] = fanIn[n]
		if fanIn[n] == 0 {
			// Unconnected, non-root block: no producer will ever close
			// its channel, so close it now.
			close(inCh[n])
		}
	}
	done := func(consumer *node) {
		closeMu.Lock()
		pending[consumer]--
		if pending[consumer] == 0 {
			close(inCh[consumer])
		}
		closeMu.Unlock()
	}

	for _, n := range g.nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				for _, o := range n.outs {
					done(o)
				}
			}()
			emit := func(out Item) {
				// Each channel send is one delivery and needs its own
				// reference; an emission with no consumers is disposed.
				if len(n.outs) == 0 {
					disposeItem(out)
					return
				}
				retainExtra(out, len(n.outs)-1)
				for _, o := range n.outs {
					inCh[o] <- out
				}
			}
			for item := range inCh[n] {
				// Queue high watermark: this item plus whatever is still
				// buffered behind it (backpressure visibility per block).
				n.queueMax.SetMax(int64(len(inCh[n]) + 1))
				// invoke handles accounting and, when supervised, panic
				// recovery and the quarantine policy; it only returns an
				// error in fail-fast mode. The delivery's reference is
				// consumed either way.
				err := g.invoke(n, item, emit)
				disposeItem(item)
				if err != nil {
					setErr(err)
					// Drain remaining input so upstream does not block,
					// disposing the dropped deliveries.
					for drop := range inCh[n] {
						disposeItem(drop)
					}
					return
				}
			}
			if err := g.invokeFlush(n, emit); err != nil {
				setErr(err)
			}
		}()
	}

	// Feed roots. The source's item carries one reference; each root
	// delivery needs its own.
	for {
		item, ok := source()
		if !ok {
			break
		}
		retainExtra(item, len(g.roots)-1)
		for _, r := range g.roots {
			inCh[r] <- item
		}
	}
	for _, r := range g.roots {
		done(r)
	}
	wg.Wait()
	return firstErr
}
