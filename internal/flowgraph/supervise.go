package flowgraph

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// PanicError wraps a panic recovered inside a supervised block so the
// error policy can treat crashes and errors uniformly while keeping the
// stack for diagnostics.
type PanicError struct {
	// Block is the panicking block's name.
	Block string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("flowgraph: panic in %s: %v", e.Block, e.Value)
}

// EventKind classifies supervisor events.
type EventKind int

const (
	// EventError is a non-fatal block error absorbed by the supervisor.
	EventError EventKind = iota
	// EventQuarantine is a block being taken out of service.
	EventQuarantine
	// EventReadmit is a quarantined block returning to service on
	// probation after its backoff.
	EventReadmit
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventError:
		return "error"
	case EventQuarantine:
		return "quarantine"
	case EventReadmit:
		return "readmit"
	}
	return "unknown"
}

// SupervisorEvent describes one supervision decision.
type SupervisorEvent struct {
	// Block is the affected block's name.
	Block string
	// Kind is what happened.
	Kind EventKind
	// Err is the triggering error (nil for EventReadmit).
	Err error
}

// String implements fmt.Stringer.
func (e SupervisorEvent) String() string {
	if e.Err == nil {
		return fmt.Sprintf("%s %s", e.Kind, e.Block)
	}
	return fmt.Sprintf("%s %s: %v", e.Kind, e.Block, e.Err)
}

// SupervisorConfig enables fault isolation in the scheduler: block
// panics are recovered and, together with returned errors, feed a
// quarantine policy instead of aborting the run. A quarantined block
// silently drops its input (counted in BlockStat.Dropped) and may be
// readmitted on probation after a backoff — matching how a live monitor
// must keep the rest of the pipeline on the air when one detector or
// analyzer misbehaves.
type SupervisorConfig struct {
	// MaxErrors is the number of consecutive errors tolerated before
	// quarantine (default 1). A panic always quarantines immediately:
	// the block's internal state cannot be trusted afterwards.
	MaxErrors int
	// BackoffItems, when positive, readmits a quarantined block on
	// probation after it has dropped this many items; zero means
	// quarantine is permanent.
	BackoffItems int64
	// MaxTrips caps how many times a block may be quarantined before it
	// is out for good; zero or negative means unlimited.
	MaxTrips int
	// OnEvent, if set, observes every supervision decision. Under
	// RunParallel it is called from block goroutines and must be safe
	// for concurrent use.
	OnEvent func(SupervisorEvent)
}

// Supervise enables the supervised error policy for subsequent runs.
func (g *Graph) Supervise(cfg SupervisorConfig) {
	if cfg.MaxErrors <= 0 {
		cfg.MaxErrors = 1
	}
	g.sup = &cfg
}

// Quarantined returns the names of blocks currently out of service.
// Safe to call concurrently with a running scheduler.
func (g *Graph) Quarantined() []string {
	var out []string
	for _, n := range g.nodes {
		if n.quarantined.Load() {
			out = append(out, n.block.Name())
		}
	}
	return out
}

func (g *Graph) event(ev SupervisorEvent) {
	if g.sup.OnEvent != nil {
		g.sup.OnEvent(ev)
	}
}

// admit reports whether a supervised node should process the next item,
// handling the drop accounting and backoff readmission. Only called from
// the goroutine that owns the node (the scheduler thread, or the node's
// worker under RunParallel), so the supervision fields need no locking.
func (g *Graph) admit(n *node) bool {
	if !n.quarantined.Load() {
		return true
	}
	if g.sup.BackoffItems > 0 && n.dropSince >= g.sup.BackoffItems &&
		(g.sup.MaxTrips <= 0 || n.trips.Load() < int64(g.sup.MaxTrips)) {
		n.quarantined.Store(false)
		n.dropSince = 0
		g.event(SupervisorEvent{Block: n.block.Name(), Kind: EventReadmit})
		return true
	}
	n.dropped.Inc()
	n.dropSince++
	return false
}

// settle applies the error policy to a block's outcome. Returns the
// error to propagate (fail-fast mode) or nil when absorbed.
func (g *Graph) settle(n *node, err error) error {
	if err == nil {
		if g.sup != nil {
			n.consecErr = 0
		}
		return nil
	}
	var pe *PanicError
	isPanic := errors.As(err, &pe)
	if g.sup == nil {
		if isPanic {
			// Unsupervised graphs keep the historical contract: a panic
			// propagates (runBlock only recovers under supervision), so
			// this is unreachable; kept for safety.
			panic(pe.Value)
		}
		return fmt.Errorf("flowgraph: %s: %w", n.block.Name(), err)
	}
	n.errors.Inc()
	n.consecErr++
	if isPanic {
		n.panics.Inc()
	}
	if isPanic || n.consecErr >= g.sup.MaxErrors {
		n.quarantined.Store(true)
		n.trips.Inc()
		n.dropSince = 0
		n.consecErr = 0
		g.event(SupervisorEvent{Block: n.block.Name(), Kind: EventQuarantine, Err: err})
	} else {
		g.event(SupervisorEvent{Block: n.block.Name(), Kind: EventError, Err: err})
	}
	return nil
}

// runBlock invokes Process with panic recovery when supervised.
func (g *Graph) runBlock(n *node, item Item, emit func(Item)) (err error) {
	if g.sup != nil {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Block: n.block.Name(), Value: r, Stack: debug.Stack()}
			}
		}()
	}
	return n.block.Process(item, emit)
}

// runFlush invokes Flush with panic recovery when supervised.
func (g *Graph) runFlush(n *node, emit func(Item)) (err error) {
	if g.sup != nil {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Block: n.block.Name(), Value: r, Stack: debug.Stack()}
			}
		}()
	}
	return n.block.Flush(emit)
}

// invoke pushes one item through n's accounting and supervision wrapper.
func (g *Graph) invoke(n *node, item Item, emit func(Item)) error {
	if g.sup != nil && !g.admit(n) {
		return nil
	}
	start := time.Now()
	err := g.runBlock(n, item, emit)
	d := time.Since(start)
	n.busyNs.Add(int64(d))
	n.items.Inc()
	if n.workObs != nil {
		n.workObs.ObserveWork(d)
	}
	return g.settle(n, err)
}

// invokeFlush drains n's buffered state through the same policy. A
// quarantined block is not flushed: its internal state is suspect.
func (g *Graph) invokeFlush(n *node, emit func(Item)) error {
	if g.sup != nil && n.quarantined.Load() {
		return nil
	}
	start := time.Now()
	err := g.runFlush(n, emit)
	n.busyNs.Add(int64(time.Since(start)))
	if err != nil && g.sup == nil {
		return fmt.Errorf("flowgraph: flush %s: %w", n.block.Name(), err)
	}
	return g.settle(n, err)
}
