package flowgraph

import (
	"errors"
	"sync"
	"testing"

	"rfdump/internal/metrics"
)

// TestStatsReadableDuringRun is the regression test for the BlockStat
// race: drop/error counters used to be plain ints updated by the
// scheduler but read concurrently by supervision/monitoring code. The
// counters are now atomic metrics primitives, so polling Stats,
// TotalBusy and Quarantined while the sequential scheduler runs must be
// race-clean (this test exists to fail under -race if that regresses).
func TestStatsReadableDuringRun(t *testing.T) {
	g := New()
	g.MustAdd(BlockFunc{Label: "src", Fn: func(item Item, emit func(Item)) error {
		emit(item)
		return nil
	}})
	boom := errors.New("boom")
	g.MustAdd(BlockFunc{Label: "flaky", Fn: func(item Item, emit func(Item)) error {
		if item.(int)%3 == 0 {
			return boom
		}
		emit(item)
		return nil
	}})
	g.MustConnect("src", "flaky")
	g.MustRoot("src")
	g.Supervise(SupervisorConfig{MaxErrors: 2, BackoffItems: 5})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, st := range g.Stats() {
				_ = st.Busy
				_ = st.Errors
				_ = st.Dropped
				_ = st.Quarantined
			}
			_ = g.TotalBusy()
			_ = g.Quarantined()
		}
	}()

	const items = 5000
	i := 0
	err := g.Run(func() (Item, bool) {
		if i >= items {
			return nil, false
		}
		i++
		return i, true
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if st := statByName(g.Stats(), "flaky"); st.Errors == 0 {
		t.Error("flaky block recorded no errors")
	}
	if st := statByName(g.Stats(), "src"); st.Items != items {
		t.Errorf("src items = %d, want %d", st.Items, items)
	}
}

// TestStatsReadableDuringRunParallel does the same while the parallel
// scheduler is in flight, which additionally exercises the per-block
// queue watermark.
func TestStatsReadableDuringRunParallel(t *testing.T) {
	g := New()
	g.MustAdd(BlockFunc{Label: "a", Fn: func(item Item, emit func(Item)) error {
		emit(item)
		return nil
	}})
	g.MustAdd(BlockFunc{Label: "b", Fn: func(item Item, emit func(Item)) error {
		emit(item)
		return nil
	}})
	g.MustConnect("a", "b")
	g.MustRoot("a")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = g.Stats()
			_ = g.TotalBusy()
		}
	}()

	const items = 5000
	i := 0
	err := g.RunParallel(func() (Item, bool) {
		if i >= items {
			return nil, false
		}
		i++
		return i, true
	}, 8)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st := statByName(g.Stats(), "b"); st.Items != items {
		t.Errorf("b items = %d, want %d", st.Items, items)
	} else if st.QueueMax < 1 {
		t.Errorf("b queue watermark = %d, want >= 1", st.QueueMax)
	}
}

func TestAttachMetricsPublishesBlockStats(t *testing.T) {
	g := New()
	g.MustAdd(BlockFunc{Label: "work", Fn: func(item Item, emit func(Item)) error {
		return nil
	}})
	g.MustRoot("work")
	reg := metrics.NewRegistry()
	g.AttachMetrics(reg, "")

	i := 0
	if err := g.Run(func() (Item, bool) {
		if i >= 7 {
			return nil, false
		}
		i++
		return i, true
	}); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["flowgraph/work/items"]; got != 7 {
		t.Errorf("registry items = %d, want 7 (counters: %v)", got, snap.Counters)
	}
	// Stats() reads the same registry-owned counters.
	if st := statByName(g.Stats(), "work"); st.Items != 7 {
		t.Errorf("Stats items = %d, want 7", st.Items)
	}
	// ResetStats zeroes the registry view too (shared primitives).
	g.ResetStats()
	if got := reg.Snapshot().Counters["flowgraph/work/items"]; got != 0 {
		t.Errorf("items after reset = %d", got)
	}
}
