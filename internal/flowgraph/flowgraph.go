// Package flowgraph is the GNU-Radio-analog runtime the monitoring
// architectures are wired with: named processing blocks connected in a
// DAG, a scheduler that pushes stream items through the graph, and
// per-block CPU-time accounting (how Table 1 and Figure 9 measure "CPU
// time / real time" per block).
//
// Like the paper's GNU Radio, the default scheduler is single-threaded
// ("GNU Radio does not support multi-threading, so the measurements in
// this paper only use a single core"); RunParallel exists as the
// future-work extension and is benchmarked separately.
package flowgraph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfdump/internal/metrics"
)

// Item is the unit flowing along edges. Concrete pipelines define their
// own item types (sample chunks, peak metadata, decoded packets).
type Item any

// Owned is implemented by items that carry pooled resources (sample
// blocks, recycled metadata). The scheduler manages one reference per
// delivery:
//
//   - an item emitted to k downstream blocks is retained k-1 times (it
//     already carries one reference from its producer);
//   - after a block finishes processing a delivery — or the delivery is
//     dropped without processing (quarantine, fail-fast drain, an
//     emission with no consumers) — the scheduler disposes that
//     delivery's reference.
//
// A block that stores an Owned item (or anything aliasing its buffers)
// beyond Process must Retain it first and Dispose it when done. Items
// that do not implement Owned flow exactly as before.
type Owned interface {
	// Retain adds a reference.
	Retain()
	// Dispose drops one reference, recycling the item on the last one.
	Dispose()
}

// retainExtra adds k additional references to an Owned item (no-op for
// plain items or k <= 0).
func retainExtra(item Item, k int) {
	if k <= 0 {
		return
	}
	if o, ok := item.(Owned); ok {
		for i := 0; i < k; i++ {
			o.Retain()
		}
	}
}

// disposeItem drops one delivery reference (no-op for plain items).
func disposeItem(item Item) {
	if o, ok := item.(Owned); ok {
		o.Dispose()
	}
}

// Block processes items. Process receives one input item and emits zero
// or more items downstream via the emit callback. Flush is called once
// after the input ends so blocks can drain internal state.
type Block interface {
	// Name identifies the block in accounting output.
	Name() string
	// Process handles one item.
	Process(item Item, emit func(Item)) error
	// Flush drains buffered state at end of stream.
	Flush(emit func(Item)) error
}

// WorkObserver is an optional Block extension: after every Process
// call the scheduler hands the block the duration it just measured for
// busy-time accounting. Instrumentation wrappers implement it to feed
// per-item latency histograms without paying for a second pair of
// clock reads on the hot path.
type WorkObserver interface {
	ObserveWork(d time.Duration)
}

// OffThreadWorker is an optional Block extension for stages that run
// work on their own goroutines (the sharded stage): OffThreadBusy
// reports cumulative CPU time spent there, which the scheduler's own
// clock reads around Process/Flush cannot observe. Stats and TotalBusy
// fold it into the block's busy time so CPU accounting stays honest
// when work leaves the scheduler thread.
type OffThreadWorker interface {
	OffThreadBusy() time.Duration
}

// BlockFunc adapts a function to Block with a no-op Flush.
type BlockFunc struct {
	Label string
	Fn    func(item Item, emit func(Item)) error
}

// Name implements Block.
func (b BlockFunc) Name() string { return b.Label }

// Process implements Block.
func (b BlockFunc) Process(item Item, emit func(Item)) error { return b.Fn(item, emit) }

// Flush implements Block.
func (b BlockFunc) Flush(func(Item)) error { return nil }

// node is one vertex of the graph.
type node struct {
	block Block
	outs  []*node
	// Accounting and supervision counters are atomic metrics primitives:
	// they are written by the goroutine that owns the node (the scheduler
	// thread, or the node's worker under RunParallel) but read live by
	// Stats/TotalBusy/Quarantined from monitoring goroutines (the -metrics
	// emitter, the supervisor), so plain ints would race. AttachMetrics
	// swaps them for registry-owned instances so a run publishes directly.
	busyNs   *metrics.Counter // cumulative Process/Flush time, ns
	items    *metrics.Counter
	errors   *metrics.Counter
	panics   *metrics.Counter
	dropped  *metrics.Counter
	trips    *metrics.Counter
	queueMax *metrics.Gauge // input-queue high watermark (RunParallel)

	quarantined atomic.Bool

	// workObs is the block's WorkObserver, cached at Add time (nil when
	// the block doesn't implement it).
	workObs WorkObserver

	// Owned exclusively by the node's scheduler goroutine; never read
	// elsewhere, so they need no synchronization.
	consecErr int
	dropSince int64
}

// Graph is a DAG of blocks. Build with Add/Connect, then Run.
type Graph struct {
	nodes  []*node
	byName map[string]*node
	roots  []*node
	sup    *SupervisorConfig
	mu     sync.Mutex

	// sinks is the single-threaded scheduler's freelist of emission
	// buffers. process is recursive, so each depth needs its own buffer;
	// recycling them keeps the scheduler free of per-item allocations
	// (the emit closure is bound once per sink, not once per call).
	sinks []*emitSink
}

// emitSink is a reusable emission collector: the bound fn is created
// once so handing it to Block.Process does not allocate.
type emitSink struct {
	buf []Item
	fn  func(Item)
}

func (g *Graph) getSink() *emitSink {
	if n := len(g.sinks); n > 0 {
		s := g.sinks[n-1]
		g.sinks = g.sinks[:n-1]
		return s
	}
	s := &emitSink{}
	s.fn = func(out Item) { s.buf = append(s.buf, out) }
	return s
}

func (g *Graph) putSink(s *emitSink) {
	for i := range s.buf {
		s.buf[i] = nil
	}
	s.buf = s.buf[:0]
	g.sinks = append(g.sinks, s)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]*node)}
}

// Add registers a block and returns its handle name. Adding two blocks
// with the same name is an error.
func (g *Graph) Add(b Block) error {
	if _, dup := g.byName[b.Name()]; dup {
		return fmt.Errorf("flowgraph: duplicate block %q", b.Name())
	}
	n := &node{
		block:    b,
		busyNs:   &metrics.Counter{},
		items:    &metrics.Counter{},
		errors:   &metrics.Counter{},
		panics:   &metrics.Counter{},
		dropped:  &metrics.Counter{},
		trips:    &metrics.Counter{},
		queueMax: &metrics.Gauge{},
	}
	if wo, ok := b.(WorkObserver); ok {
		n.workObs = wo
	}
	g.nodes = append(g.nodes, n)
	g.byName[b.Name()] = n
	return nil
}

// MustAdd is Add that panics on error (graph construction is programmer
// controlled).
func (g *Graph) MustAdd(b Block) {
	if err := g.Add(b); err != nil {
		panic(err)
	}
}

// Connect wires from's output to to's input.
func (g *Graph) Connect(from, to string) error {
	f, ok := g.byName[from]
	if !ok {
		return fmt.Errorf("flowgraph: unknown block %q", from)
	}
	t, ok := g.byName[to]
	if !ok {
		return fmt.Errorf("flowgraph: unknown block %q", to)
	}
	f.outs = append(f.outs, t)
	return nil
}

// MustConnect is Connect that panics on error.
func (g *Graph) MustConnect(from, to string) {
	if err := g.Connect(from, to); err != nil {
		panic(err)
	}
}

// Root marks a block as an entry point receiving source items.
func (g *Graph) Root(name string) error {
	n, ok := g.byName[name]
	if !ok {
		return fmt.Errorf("flowgraph: unknown block %q", name)
	}
	g.roots = append(g.roots, n)
	return nil
}

// MustRoot is Root that panics on error.
func (g *Graph) MustRoot(name string) {
	if err := g.Root(name); err != nil {
		panic(err)
	}
}

// checkAcyclic verifies the graph is a DAG.
func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*node]int, len(g.nodes))
	var visit func(n *node) error
	visit = func(n *node) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("flowgraph: cycle through %q", n.block.Name())
		case black:
			return nil
		}
		color[n] = gray
		for _, o := range n.outs {
			if err := visit(o); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.nodes {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// process pushes one delivery of item into n, timing the block and
// recursing into its outputs depth-first (single-threaded, so per-block
// busy time sums to total CPU time). It consumes one reference to item:
// whether the block processes it or the supervisor drops it, the
// delivery is disposed before returning.
func (g *Graph) process(n *node, item Item) error {
	sink := g.getSink()
	err := g.invoke(n, item, sink.fn)
	disposeItem(item)
	if err != nil {
		// Fail-fast abort: drop whatever was emitted before the error.
		for _, out := range sink.buf {
			disposeItem(out)
		}
		g.putSink(sink)
		return err
	}
	if err := g.fanOut(n, sink.buf); err != nil {
		g.putSink(sink)
		return err
	}
	g.putSink(sink)
	return nil
}

// fanOut delivers each emitted item to all of n's outputs, managing one
// reference per delivery (and disposing emissions with no consumers).
func (g *Graph) fanOut(n *node, emitted []Item) error {
	for ei, out := range emitted {
		if len(n.outs) == 0 {
			disposeItem(out)
			continue
		}
		retainExtra(out, len(n.outs)-1)
		for oi, next := range n.outs {
			if err := g.process(next, out); err != nil {
				// Fail-fast abort: process consumed one reference per
				// delivery so far; dispose the undelivered references of
				// this item and the rest of the batch so pooled items are
				// recycled even on the abort path.
				for k := oi + 1; k < len(n.outs); k++ {
					disposeItem(out)
				}
				for _, rest := range emitted[ei+1:] {
					disposeItem(rest)
				}
				return err
			}
		}
	}
	return nil
}

func (g *Graph) flush(n *node, visited map[*node]bool) error {
	if visited[n] {
		return nil
	}
	visited[n] = true
	sink := g.getSink()
	if err := g.invokeFlush(n, sink.fn); err != nil {
		g.putSink(sink)
		return err
	}
	if err := g.fanOut(n, sink.buf); err != nil {
		g.putSink(sink)
		return err
	}
	g.putSink(sink)
	for _, next := range n.outs {
		if err := g.flush(next, visited); err != nil {
			return err
		}
	}
	return nil
}

// Run pulls items from source until it returns ok=false, pushing each into
// every root block, then flushes the graph in topological order.
func (g *Graph) Run(source func() (Item, bool)) error {
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	if len(g.roots) == 0 {
		return fmt.Errorf("flowgraph: no root blocks")
	}
	for {
		item, ok := source()
		if !ok {
			break
		}
		// The source's item carries one reference; each root delivery
		// needs its own.
		retainExtra(item, len(g.roots)-1)
		for _, r := range g.roots {
			if err := g.process(r, item); err != nil {
				return err
			}
		}
	}
	visited := make(map[*node]bool, len(g.nodes))
	for _, r := range g.roots {
		if err := g.flush(r, visited); err != nil {
			return err
		}
	}
	return nil
}

// BlockStat is the per-block accounting snapshot. It may be taken while
// a run is in flight: each field is an atomic read of a live counter.
type BlockStat struct {
	Name  string
	Busy  time.Duration
	Items int64
	// QueueMax is the input-queue high watermark under RunParallel
	// (zero for the single-threaded scheduler, which has no queues).
	QueueMax int64
	// Supervision counters (zero without a SupervisorConfig).
	Errors  int64 // Process/Flush errors absorbed (panics included)
	Panics  int64 // recovered panics
	Dropped int64 // items dropped while quarantined
	Trips   int   // times the block was quarantined
	// Quarantined reports whether the block ended the run out of
	// service.
	Quarantined bool
}

// Stats returns per-block accounting sorted by descending busy time.
// Safe to call concurrently with a running scheduler.
func (g *Graph) Stats() []BlockStat {
	out := make([]BlockStat, 0, len(g.nodes))
	for _, n := range g.nodes {
		busy := time.Duration(n.busyNs.Load())
		if ow, ok := n.block.(OffThreadWorker); ok {
			busy += ow.OffThreadBusy()
		}
		out = append(out, BlockStat{
			Name: n.block.Name(), Busy: busy,
			Items: n.items.Load(), QueueMax: n.queueMax.Load(),
			Errors: n.errors.Load(), Panics: n.panics.Load(),
			Dropped: n.dropped.Load(), Trips: int(n.trips.Load()),
			Quarantined: n.quarantined.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Busy > out[j].Busy })
	return out
}

// TotalBusy sums all block busy times (== CPU time for the single-threaded
// scheduler). Safe to call concurrently with a running scheduler.
func (g *Graph) TotalBusy() time.Duration {
	var t time.Duration
	for _, n := range g.nodes {
		t += time.Duration(n.busyNs.Load())
		if ow, ok := n.block.(OffThreadWorker); ok {
			t += ow.OffThreadBusy()
		}
	}
	return t
}

// ResetStats clears accounting and supervision state.
func (g *Graph) ResetStats() {
	for _, n := range g.nodes {
		n.busyNs.Reset()
		n.items.Reset()
		n.errors.Reset()
		n.panics.Reset()
		n.dropped.Reset()
		n.trips.Reset()
		n.queueMax.Reset()
		n.consecErr = 0
		n.dropSince = 0
		n.quarantined.Store(false)
	}
}

// AttachMetrics swaps every block's accounting counters for
// registry-owned instances named "<prefix>/<block>/<stat>", so the run
// publishes its per-block work/queue/panic stats straight into reg
// (snapshotable by the -metrics emitter and the expvar endpoint). Call
// it after the graph is built and before Run/RunParallel; counts
// accumulated before the attach stay behind in the old counters.
func (g *Graph) AttachMetrics(reg *metrics.Registry, prefix string) {
	if reg == nil {
		return
	}
	if prefix == "" {
		prefix = "flowgraph"
	}
	for _, n := range g.nodes {
		base := prefix + "/" + n.block.Name() + "/"
		n.busyNs = reg.Counter(base + "busy_ns")
		n.items = reg.Counter(base + "items")
		n.errors = reg.Counter(base + "errors")
		n.panics = reg.Counter(base + "panics")
		n.dropped = reg.Counter(base + "dropped")
		n.trips = reg.Counter(base + "trips")
		n.queueMax = reg.Gauge(base + "queue_max")
	}
}
