// Package flowgraph is the GNU-Radio-analog runtime the monitoring
// architectures are wired with: named processing blocks connected in a
// DAG, a scheduler that pushes stream items through the graph, and
// per-block CPU-time accounting (how Table 1 and Figure 9 measure "CPU
// time / real time" per block).
//
// Like the paper's GNU Radio, the default scheduler is single-threaded
// ("GNU Radio does not support multi-threading, so the measurements in
// this paper only use a single core"); RunParallel exists as the
// future-work extension and is benchmarked separately.
package flowgraph

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Item is the unit flowing along edges. Concrete pipelines define their
// own item types (sample chunks, peak metadata, decoded packets).
type Item any

// Block processes items. Process receives one input item and emits zero
// or more items downstream via the emit callback. Flush is called once
// after the input ends so blocks can drain internal state.
type Block interface {
	// Name identifies the block in accounting output.
	Name() string
	// Process handles one item.
	Process(item Item, emit func(Item)) error
	// Flush drains buffered state at end of stream.
	Flush(emit func(Item)) error
}

// BlockFunc adapts a function to Block with a no-op Flush.
type BlockFunc struct {
	Label string
	Fn    func(item Item, emit func(Item)) error
}

// Name implements Block.
func (b BlockFunc) Name() string { return b.Label }

// Process implements Block.
func (b BlockFunc) Process(item Item, emit func(Item)) error { return b.Fn(item, emit) }

// Flush implements Block.
func (b BlockFunc) Flush(func(Item)) error { return nil }

// node is one vertex of the graph.
type node struct {
	block Block
	outs  []*node
	// accounting
	busy  time.Duration
	items int64
	// supervision state (only mutated under a SupervisorConfig, and only
	// by the goroutine that owns the node)
	errors      int64
	panics      int64
	dropped     int64
	consecErr   int
	trips       int
	dropSince   int64
	quarantined bool
}

// Graph is a DAG of blocks. Build with Add/Connect, then Run.
type Graph struct {
	nodes  []*node
	byName map[string]*node
	roots  []*node
	sup    *SupervisorConfig
	mu     sync.Mutex
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byName: make(map[string]*node)}
}

// Add registers a block and returns its handle name. Adding two blocks
// with the same name is an error.
func (g *Graph) Add(b Block) error {
	if _, dup := g.byName[b.Name()]; dup {
		return fmt.Errorf("flowgraph: duplicate block %q", b.Name())
	}
	n := &node{block: b}
	g.nodes = append(g.nodes, n)
	g.byName[b.Name()] = n
	return nil
}

// MustAdd is Add that panics on error (graph construction is programmer
// controlled).
func (g *Graph) MustAdd(b Block) {
	if err := g.Add(b); err != nil {
		panic(err)
	}
}

// Connect wires from's output to to's input.
func (g *Graph) Connect(from, to string) error {
	f, ok := g.byName[from]
	if !ok {
		return fmt.Errorf("flowgraph: unknown block %q", from)
	}
	t, ok := g.byName[to]
	if !ok {
		return fmt.Errorf("flowgraph: unknown block %q", to)
	}
	f.outs = append(f.outs, t)
	return nil
}

// MustConnect is Connect that panics on error.
func (g *Graph) MustConnect(from, to string) {
	if err := g.Connect(from, to); err != nil {
		panic(err)
	}
}

// Root marks a block as an entry point receiving source items.
func (g *Graph) Root(name string) error {
	n, ok := g.byName[name]
	if !ok {
		return fmt.Errorf("flowgraph: unknown block %q", name)
	}
	g.roots = append(g.roots, n)
	return nil
}

// MustRoot is Root that panics on error.
func (g *Graph) MustRoot(name string) {
	if err := g.Root(name); err != nil {
		panic(err)
	}
}

// checkAcyclic verifies the graph is a DAG.
func (g *Graph) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*node]int, len(g.nodes))
	var visit func(n *node) error
	visit = func(n *node) error {
		switch color[n] {
		case gray:
			return fmt.Errorf("flowgraph: cycle through %q", n.block.Name())
		case black:
			return nil
		}
		color[n] = gray
		for _, o := range n.outs {
			if err := visit(o); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.nodes {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// process pushes one item into n, timing the block and recursing into its
// outputs depth-first (single-threaded, so per-block busy time sums to
// total CPU time).
func (g *Graph) process(n *node, item Item) error {
	var emitted []Item
	if err := g.invoke(n, item, func(out Item) { emitted = append(emitted, out) }); err != nil {
		return err
	}
	for _, out := range emitted {
		for _, next := range n.outs {
			if err := g.process(next, out); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *Graph) flush(n *node, visited map[*node]bool) error {
	if visited[n] {
		return nil
	}
	visited[n] = true
	var emitted []Item
	if err := g.invokeFlush(n, func(out Item) { emitted = append(emitted, out) }); err != nil {
		return err
	}
	for _, out := range emitted {
		for _, next := range n.outs {
			if err := g.process(next, out); err != nil {
				return err
			}
		}
	}
	for _, next := range n.outs {
		if err := g.flush(next, visited); err != nil {
			return err
		}
	}
	return nil
}

// Run pulls items from source until it returns ok=false, pushing each into
// every root block, then flushes the graph in topological order.
func (g *Graph) Run(source func() (Item, bool)) error {
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	if len(g.roots) == 0 {
		return fmt.Errorf("flowgraph: no root blocks")
	}
	for {
		item, ok := source()
		if !ok {
			break
		}
		for _, r := range g.roots {
			if err := g.process(r, item); err != nil {
				return err
			}
		}
	}
	visited := make(map[*node]bool, len(g.nodes))
	for _, r := range g.roots {
		if err := g.flush(r, visited); err != nil {
			return err
		}
	}
	return nil
}

// BlockStat is the per-block accounting snapshot.
type BlockStat struct {
	Name  string
	Busy  time.Duration
	Items int64
	// Supervision counters (zero without a SupervisorConfig).
	Errors  int64 // Process/Flush errors absorbed (panics included)
	Panics  int64 // recovered panics
	Dropped int64 // items dropped while quarantined
	Trips   int   // times the block was quarantined
	// Quarantined reports whether the block ended the run out of
	// service.
	Quarantined bool
}

// Stats returns per-block accounting sorted by descending busy time.
func (g *Graph) Stats() []BlockStat {
	out := make([]BlockStat, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, BlockStat{
			Name: n.block.Name(), Busy: n.busy, Items: n.items,
			Errors: n.errors, Panics: n.panics, Dropped: n.dropped,
			Trips: n.trips, Quarantined: n.quarantined,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Busy > out[j].Busy })
	return out
}

// TotalBusy sums all block busy times (== CPU time for the single-threaded
// scheduler).
func (g *Graph) TotalBusy() time.Duration {
	var t time.Duration
	for _, n := range g.nodes {
		t += n.busy
	}
	return t
}

// ResetStats clears accounting and supervision state.
func (g *Graph) ResetStats() {
	for _, n := range g.nodes {
		n.busy = 0
		n.items = 0
		n.errors = 0
		n.panics = 0
		n.dropped = 0
		n.consecErr = 0
		n.trips = 0
		n.dropSince = 0
		n.quarantined = false
	}
}
