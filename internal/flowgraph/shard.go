package flowgraph

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded fans one logical block's work across a pool of worker
// goroutines while presenting the ordinary single-threaded Block
// contract to the scheduler. Each worker owns a private replica of the
// inner block (stamped by the factory, so per-replica scratch state is
// never shared), items are distributed over per-worker deques with
// work-stealing, and emissions are re-sequenced so downstream blocks
// observe exactly the order a single inline block would have produced.
//
// Ownership follows the scheduler's discipline: the stage retains each
// input item while it is queued or being processed (the delivery
// reference dies when Process returns) and the worker disposes that
// reference as soon as its replica's Process call finishes. Items the
// replicas emit are buffered per job and handed to the real emit
// callback — on the scheduler goroutine — once every earlier job has
// completed; on an error or abort the undeliverable buffers are
// disposed instead of leaked.
//
// In-flight work is bounded (a small multiple of the worker count), so
// the stage applies backpressure to the scheduler instead of queueing
// without limit; upstream windows need only cover that bounded lag.
// Steady state allocates nothing: jobs, their emission buffers and the
// deque storage are all recycled.
type Sharded struct {
	name    string
	replica func(i int) Block
	n       int // worker count

	// Scheduler-side state (only the goroutine calling Process/Flush
	// touches these).
	started bool
	ring    []*shardJob // in-flight jobs in sequence order (circular)
	head    int
	count   int
	free    []*shardJob // job freelist
	next    int         // round-robin enqueue cursor
	blocks  []Block     // worker replicas, created once

	queues []shardQueue
	workCh chan struct{} // one token per queued job
	stopCh chan struct{}
	wg     sync.WaitGroup

	// mu guards job done/err flags; cond signals head-of-ring progress.
	mu   sync.Mutex
	cond sync.Cond

	busy atomic.Int64 // cumulative worker Process ns
}

// shardJob carries one input item through a worker and buffers what the
// replica emits until the job's turn in the output order comes up.
type shardJob struct {
	item Item
	out  []Item
	emit func(Item) // prebound append-to-out closure, built once
	done bool       // guarded by Sharded.mu
	err  error      // guarded by Sharded.mu
}

// shardQueue is one worker's mutex deque. The owner pops the tail
// (newest first — the job most likely still cache-hot from the
// scheduler), thieves steal the head (oldest first), and the backing
// array is compacted in place so steady-state operation never
// reallocates.
type shardQueue struct {
	mu   sync.Mutex
	jobs []*shardJob
	head int
}

func (q *shardQueue) push(j *shardJob) {
	q.mu.Lock()
	if q.head > 0 && len(q.jobs) == cap(q.jobs) {
		n := copy(q.jobs, q.jobs[q.head:])
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	q.jobs = append(q.jobs, j)
	q.mu.Unlock()
}

func (q *shardQueue) popTail() *shardJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.jobs) {
		return nil
	}
	n := len(q.jobs) - 1
	j := q.jobs[n]
	q.jobs[n] = nil
	q.jobs = q.jobs[:n]
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j
}

func (q *shardQueue) popHead() *shardJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.jobs) {
		return nil
	}
	j := q.jobs[q.head]
	q.jobs[q.head] = nil
	q.head++
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j
}

// NewSharded builds a sharded stage running workers replicas of the
// block the factory stamps out (factory is called once per worker, on
// first use). workers <= 0 selects GOMAXPROCS.
func NewSharded(name string, workers int, replica func(i int) Block) *Sharded {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Sharded{name: name, replica: replica, n: workers}
	s.cond.L = &s.mu
	return s
}

// Name implements Block.
func (s *Sharded) Name() string { return s.name }

// Workers returns the worker count the stage was built with.
func (s *Sharded) Workers() int { return s.n }

// OffThreadBusy implements OffThreadWorker: cumulative CPU time the
// worker replicas spent inside Process, which the scheduler's own
// measurement of the (cheap) enqueue call cannot see.
func (s *Sharded) OffThreadBusy() time.Duration {
	return time.Duration(s.busy.Load())
}

// inflight bounds outstanding jobs: enough to keep every worker busy
// through scheduling jitter without letting the source run far ahead of
// the history window.
func (s *Sharded) inflight() int { return 4 * s.n }

// start lazily creates replicas (first start only) and spins up the
// worker pool. Called from the scheduler goroutine.
func (s *Sharded) start() {
	if s.started {
		return
	}
	if s.ring == nil {
		s.ring = make([]*shardJob, s.inflight())
		s.queues = make([]shardQueue, s.n)
		s.blocks = make([]Block, s.n)
		for i := range s.blocks {
			s.blocks[i] = s.replica(i)
		}
	}
	s.workCh = make(chan struct{}, s.inflight())
	s.stopCh = make(chan struct{})
	for i := 0; i < s.n; i++ {
		s.wg.Add(1)
		go s.worker(i, s.blocks[i])
	}
	s.started = true
}

// stop tears the worker pool down. Only called when the ring is empty
// (every token consumed), so no worker is blocked on workCh with work
// pending.
func (s *Sharded) stop() {
	if !s.started {
		return
	}
	close(s.stopCh)
	s.wg.Wait()
	s.started = false
}

func (s *Sharded) getJob() *shardJob {
	if n := len(s.free); n > 0 {
		j := s.free[n-1]
		s.free = s.free[:n-1]
		j.done = false
		j.err = nil
		return j
	}
	j := &shardJob{}
	j.emit = func(out Item) { j.out = append(j.out, out) }
	return j
}

func (s *Sharded) putJob(j *shardJob) {
	j.out = j.out[:0]
	s.free = append(s.free, j)
}

// Process enqueues one item for the workers, first re-emitting every
// completed job at the head of the sequence ring (and blocking for a
// slot when the ring is full — the stage's backpressure).
func (s *Sharded) Process(item Item, emit func(Item)) error {
	s.start()
	if err := s.drain(emit, false); err != nil {
		return err
	}
	j := s.getJob()
	j.item = item
	retainExtra(item, 1) // our reference: the delivery ref dies when we return
	s.ring[(s.head+s.count)%len(s.ring)] = j
	s.count++
	s.queues[s.next].push(j)
	s.next++
	if s.next == s.n {
		s.next = 0
	}
	s.workCh <- struct{}{}
	return nil
}

// drain pops completed jobs off the head of the sequence ring, emitting
// their buffered outputs in order. With waitAll it blocks until the ring
// is empty; otherwise it blocks only when the ring is full (no slot for
// the next job). The first job error latches: later jobs are awaited and
// their buffers disposed rather than emitted, the pool is stopped, and
// the error is returned.
func (s *Sharded) drain(emit func(Item), waitAll bool) error {
	var firstErr error
	s.mu.Lock()
	for s.count > 0 {
		j := s.ring[s.head]
		if !j.done {
			if !waitAll && firstErr == nil && s.count < len(s.ring) {
				break
			}
			s.cond.Wait()
			continue
		}
		s.ring[s.head] = nil
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.count--
		if firstErr == nil {
			firstErr = j.err
		}
		for _, out := range j.out {
			if firstErr != nil {
				disposeItem(out)
			} else {
				emit(out)
			}
		}
		s.putJob(j)
	}
	s.mu.Unlock()
	if firstErr != nil {
		s.stop()
	}
	return firstErr
}

// Flush waits out the in-flight jobs, stops the workers, then flushes
// each replica in worker order on the calling goroutine.
func (s *Sharded) Flush(emit func(Item)) error {
	if s.started {
		if err := s.drain(emit, true); err != nil {
			return err
		}
		s.stop()
	}
	var firstErr error
	for _, b := range s.blocks {
		if err := b.Flush(emit); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// worker consumes one token per queued job, finds the job (own deque
// tail first, then steals the oldest from the others), runs the replica
// and marks the job done.
func (s *Sharded) worker(w int, blk Block) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.workCh:
		}
		j := s.findJob(w)
		t0 := time.Now()
		err := runShard(blk, j)
		s.busy.Add(int64(time.Since(t0)))
		disposeItem(j.item)
		j.item = nil
		s.mu.Lock()
		j.done = true
		j.err = err
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// findJob locates a queued job after a token was consumed. Tokens map
// one-to-one onto queued jobs, so some deque holds one; a sibling may
// race us to any particular deque, but then its own token's job remains
// for us, so the rescan terminates.
func (s *Sharded) findJob(w int) *shardJob {
	for {
		if j := s.queues[w].popTail(); j != nil {
			return j
		}
		for i := 1; i < s.n; i++ {
			if j := s.queues[(w+i)%s.n].popHead(); j != nil {
				return j
			}
		}
		runtime.Gosched()
	}
}

// runShard runs one job through a replica, converting a panic into an
// error so the job still completes and the scheduler can tear down
// instead of deadlocking on a job that never finishes.
func runShard(blk Block, j *shardJob) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("flowgraph: sharded worker panic in %s: %v", blk.Name(), r)
		}
	}()
	return blk.Process(j.item, j.emit)
}
