package flowgraph

import (
	"errors"
	"sync/atomic"
	"testing"
)

// tracked is a minimal Owned item: refcounted, records whether it ever
// hit zero and whether it went negative (double dispose).
type tracked struct {
	refs     atomic.Int32
	released atomic.Bool
	under    atomic.Bool
}

func newTracked() *tracked {
	t := &tracked{}
	t.refs.Store(1)
	return t
}

func (t *tracked) Retain() { t.refs.Add(1) }
func (t *tracked) Dispose() {
	switch n := t.refs.Add(-1); {
	case n == 0:
		t.released.Store(true)
	case n < 0:
		t.under.Store(true)
	}
}

func checkBalanced(t *testing.T, items []*tracked) {
	t.Helper()
	for i, it := range items {
		if got := it.refs.Load(); got != 0 {
			t.Errorf("item %d: refcount = %d at end of run, want 0", i, got)
		}
		if it.under.Load() {
			t.Errorf("item %d: disposed below zero (double release)", i)
		}
		if !it.released.Load() {
			t.Errorf("item %d: never released", i)
		}
	}
}

// passBlock forwards every item unchanged, retaining the extra reference
// the emission carries (the pass-through contract for Owned items).
type passBlock struct{ label string }

func (p passBlock) Name() string { return p.label }
func (p passBlock) Process(item Item, emit func(Item)) error {
	if o, ok := item.(Owned); ok {
		o.Retain()
	}
	emit(item)
	return nil
}
func (p passBlock) Flush(func(Item)) error { return nil }

// dropBlock consumes everything.
type dropBlock struct{ label string }

func (d dropBlock) Name() string                   { return d.label }
func (d dropBlock) Process(Item, func(Item)) error { return nil }
func (d dropBlock) Flush(emit func(Item)) error    { return nil }

func fanGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.MustAdd(passBlock{"root"})
	g.MustRoot("root")
	g.MustAdd(dropBlock{"a"})
	g.MustAdd(dropBlock{"b"})
	g.MustAdd(dropBlock{"c"})
	g.MustConnect("root", "a")
	g.MustConnect("root", "b")
	g.MustConnect("root", "c")
	return g
}

// TestOwnershipFanOut: every delivery gets one reference and every
// reference is returned, across a 1->3 fan-out, in both schedulers.
func TestOwnershipFanOut(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		items := make([]*tracked, 50)
		for i := range items {
			items[i] = newTracked()
		}
		g := fanGraph(t)
		i := 0
		source := func() (Item, bool) {
			if i >= len(items) {
				return nil, false
			}
			it := items[i]
			i++
			return it, true
		}
		var err error
		if parallel {
			err = g.RunParallel(source, 8)
		} else {
			err = g.Run(source)
		}
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		checkBalanced(t, items)
	}
}

// TestOwnershipNoConsumers: an emission from a leaf block (no outputs)
// is disposed by the scheduler, not leaked.
func TestOwnershipNoConsumers(t *testing.T) {
	g := New()
	g.MustAdd(passBlock{"leaf"})
	g.MustRoot("leaf")
	item := newTracked()
	fed := false
	source := func() (Item, bool) {
		if fed {
			return nil, false
		}
		fed = true
		return item, true
	}
	if err := g.Run(source); err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, []*tracked{item})
}

// alwaysErrBlock errors on every item, so under supervision it is
// quarantined and subsequent deliveries are dropped.
type alwaysErrBlock struct{}

func (alwaysErrBlock) Name() string                   { return "faulty" }
func (alwaysErrBlock) Process(Item, func(Item)) error { return errors.New("boom") }
func (alwaysErrBlock) Flush(func(Item)) error         { return nil }

// TestOwnershipQuarantineDrop: deliveries dropped by the supervisor's
// quarantine are still disposed.
func TestOwnershipQuarantineDrop(t *testing.T) {
	g := New()
	g.MustAdd(alwaysErrBlock{})
	g.MustRoot("faulty")
	g.Supervise(SupervisorConfig{MaxErrors: 1})

	items := make([]*tracked, 20)
	for i := range items {
		items[i] = newTracked()
	}
	i := 0
	source := func() (Item, bool) {
		if i >= len(items) {
			return nil, false
		}
		it := items[i]
		i++
		return it, true
	}
	if err := g.Run(source); err != nil {
		t.Fatal(err)
	}
	checkBalanced(t, items)
	if st := g.Stats(); st[0].Dropped == 0 {
		t.Error("expected quarantine drops")
	}
}

// burstBlock emits three fresh tracked items per input and records them
// so the test can audit their references.
type burstBlock struct{ made *[]*tracked }

func (burstBlock) Name() string { return "burst" }
func (b burstBlock) Process(_ Item, emit func(Item)) error {
	for i := 0; i < 3; i++ {
		it := newTracked()
		*b.made = append(*b.made, it)
		emit(it)
	}
	return nil
}
func (burstBlock) Flush(func(Item)) error { return nil }

// errOnNth errors on the nth delivery it sees (1-based), consuming the
// rest normally.
type errOnNth struct {
	label string
	n     int
	seen  *int
}

func (e errOnNth) Name() string { return e.label }
func (e errOnNth) Process(Item, func(Item)) error {
	*e.seen++
	if *e.seen == e.n {
		return errors.New("boom")
	}
	return nil
}
func (e errOnNth) Flush(func(Item)) error { return nil }

// TestOwnershipFanOutFailFast: when an unsupervised block fails mid
// fan-out, the failing item's undelivered references for the remaining
// consumers AND the not-yet-fanned-out items in the emitted batch must
// all be disposed, not leaked.
func TestOwnershipFanOutFailFast(t *testing.T) {
	var made []*tracked
	seen := 0
	g := New()
	g.MustAdd(burstBlock{made: &made})
	g.MustRoot("burst")
	g.MustAdd(dropBlock{"a"})
	g.MustAdd(errOnNth{label: "b", n: 2, seen: &seen}) // fails on batch item 2
	g.MustAdd(dropBlock{"c"})
	g.MustConnect("burst", "a")
	g.MustConnect("burst", "b")
	g.MustConnect("burst", "c")

	fed := false
	source := func() (Item, bool) {
		if fed {
			return nil, false
		}
		fed = true
		return newTracked(), true // plain input; the emitted burst is what we audit
	}
	if err := g.Run(source); err == nil {
		t.Fatal("expected fail-fast error")
	}
	if len(made) != 3 {
		t.Fatalf("burst emitted %d items, want 3", len(made))
	}
	// Item 2 fails at consumer b: its deliveries to b's remaining peers
	// must be disposed, as must item 3, which never fanned out.
	checkBalanced(t, made)
}

// TestOwnershipParallelFailFast: items drained after a fail-fast error
// under RunParallel are disposed.
func TestOwnershipParallelFailFast(t *testing.T) {
	g := New()
	g.MustAdd(alwaysErrBlock{})
	g.MustRoot("faulty")
	items := make([]*tracked, 30)
	for i := range items {
		items[i] = newTracked()
	}
	i := 0
	source := func() (Item, bool) {
		if i >= len(items) {
			return nil, false
		}
		it := items[i]
		i++
		return it, true
	}
	if err := g.RunParallel(source, 4); err == nil {
		t.Fatal("expected fail-fast error")
	}
	checkBalanced(t, items)
}
