package flowgraph

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// shardWork is a sharded-stage replica doing deliberately unbalanced
// busy-work so jobs finish out of order, then emitting a deterministic
// transform of the input (two items for every third input).
type shardWork struct {
	id   int
	sink uint64 // defeats dead-code elimination of the spin
}

func (b *shardWork) Name() string { return fmt.Sprintf("work-%d", b.id) }

func (b *shardWork) Process(item Item, emit func(Item)) error {
	v := item.(int)
	spin := (v * v % 13) * 2000
	acc := uint64(v)
	for i := 0; i < spin; i++ {
		acc = acc*1099511628211 + 1
	}
	b.sink += acc
	emit(v * 2)
	if v%3 == 0 {
		emit(v*2 + 1)
	}
	return nil
}

func (b *shardWork) Flush(emit func(Item)) error { return nil }

// runSharded pushes n ints through root -> sharded(workers) -> sink and
// returns the sink's observations.
func runSharded(t *testing.T, workers, n int, replica func(i int) Block) []Item {
	t.Helper()
	g := New()
	root := &appendBlock{name: "root"}
	g.MustAdd(root)
	g.MustRoot("root")
	sh := NewSharded("sharded", workers, replica)
	g.MustAdd(sh)
	g.MustConnect("root", "sharded")
	sink := &appendBlock{name: "sink"}
	g.MustAdd(sink)
	g.MustConnect("sharded", "sink")
	if err := g.Run(intSource(n)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sink.seen
}

// TestShardedOrder locks in the central guarantee: whatever the worker
// count and however unbalanced the per-job work, downstream order is
// identical to the single-threaded inline order.
func TestShardedOrder(t *testing.T) {
	const n = 400
	want := runSharded(t, 1, n, func(i int) Block { return &shardWork{id: i} })
	for _, workers := range []int{2, 3, 8} {
		got := runSharded(t, workers, n, func(i int) Block { return &shardWork{id: i} })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: output[%d] = %v, want %v (order not preserved)",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestShardedReplicaIsolation verifies each worker gets its own replica
// from the factory and every input is processed exactly once.
func TestShardedReplicaIsolation(t *testing.T) {
	var stamped atomic.Int32
	var processed atomic.Int32
	const workers = 4
	out := runSharded(t, workers, 200, func(i int) Block {
		stamped.Add(1)
		return BlockFunc{Label: fmt.Sprintf("r%d", i), Fn: func(item Item, emit func(Item)) error {
			processed.Add(1)
			emit(item)
			return nil
		}}
	})
	if got := stamped.Load(); got != workers {
		t.Errorf("factory stamped %d replicas, want %d", got, workers)
	}
	if got := processed.Load(); got != 200 {
		t.Errorf("replicas processed %d items, want 200", got)
	}
	if len(out) != 200 {
		t.Errorf("sink saw %d items, want 200", len(out))
	}
}

// TestShardedOwnedDiscipline pushes refcounted items through the stage,
// with the replicas emitting fresh refcounted items, and checks every
// reference is balanced at the end of the run — including the retain
// the stage takes while a job is queued on a worker deque.
func TestShardedOwnedDiscipline(t *testing.T) {
	const n = 300
	var inputs []*tracked
	var emitted []*tracked
	var emitMu chan struct{} = make(chan struct{}, 1)
	emitMu <- struct{}{}

	g := New()
	src := func() (Item, bool) {
		if len(inputs) >= n {
			return nil, false
		}
		it := newTracked()
		inputs = append(inputs, it)
		return it, true
	}
	root := passBlock{"root"}
	g.MustAdd(root)
	g.MustRoot("root")
	sh := NewSharded("sharded", 4, func(i int) Block {
		return BlockFunc{Label: fmt.Sprintf("r%d", i), Fn: func(item Item, emit func(Item)) error {
			out := newTracked()
			<-emitMu
			emitted = append(emitted, out)
			emitMu <- struct{}{}
			emit(out)
			return nil
		}}
	})
	g.MustAdd(sh)
	g.MustConnect("root", "sharded")
	g.MustAdd(dropBlock{"sink"})
	g.MustConnect("sharded", "sink")
	if err := g.Run(src); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkBalanced(t, inputs)
	checkBalanced(t, emitted)
}

// TestShardedError checks a replica error surfaces from the stage, that
// the run aborts, and that every item reference — queued, in flight or
// buffered for emission — is still balanced afterwards.
func TestShardedError(t *testing.T) {
	boom := errors.New("boom")
	var inputs []*tracked
	g := New()
	src := func() (Item, bool) {
		if len(inputs) >= 100 {
			return nil, false
		}
		it := newTracked()
		inputs = append(inputs, it)
		return it, true
	}
	g.MustAdd(passBlock{"root"})
	g.MustRoot("root")
	var seen atomic.Int32
	sh := NewSharded("sharded", 3, func(i int) Block {
		return BlockFunc{Label: fmt.Sprintf("r%d", i), Fn: func(item Item, emit func(Item)) error {
			if seen.Add(1) == 40 {
				return boom
			}
			return nil
		}}
	})
	g.MustAdd(sh)
	g.MustConnect("root", "sharded")
	g.MustAdd(dropBlock{"sink"})
	g.MustConnect("sharded", "sink")
	if err := g.Run(src); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	checkBalanced(t, inputs)
}

// TestShardedPanic checks a panicking replica is converted into an
// error instead of deadlocking the stage or killing the process.
func TestShardedPanic(t *testing.T) {
	g := New()
	g.MustAdd(passBlock{"root"})
	g.MustRoot("root")
	sh := NewSharded("sharded", 2, func(i int) Block {
		return BlockFunc{Label: fmt.Sprintf("r%d", i), Fn: func(item Item, emit func(Item)) error {
			if item.(int) == 17 {
				panic("replica exploded")
			}
			return nil
		}}
	})
	g.MustAdd(sh)
	g.MustConnect("root", "sharded")
	g.MustAdd(dropBlock{"sink"})
	g.MustConnect("sharded", "sink")
	err := g.Run(intSource(50))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Run error = %v, want worker panic error", err)
	}
}

// TestShardedFlush checks replica Flush runs after the jobs drain and
// its emissions reach downstream.
func TestShardedFlush(t *testing.T) {
	g := New()
	g.MustAdd(&appendBlock{name: "root"})
	g.MustRoot("root")
	sh := NewSharded("sharded", 3, func(i int) Block {
		return &appendBlock{name: fmt.Sprintf("r%d", i), flush: []Item{fmt.Sprintf("flushed-%d", i)}}
	})
	g.MustAdd(sh)
	g.MustConnect("root", "sharded")
	sink := &appendBlock{name: "sink"}
	g.MustAdd(sink)
	g.MustConnect("sharded", "sink")
	if err := g.Run(intSource(10)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 10 forwarded items plus one flush marker per replica, with the
	// flush markers after every data item and in worker order.
	if len(sink.seen) != 13 {
		t.Fatalf("sink saw %d items, want 13: %v", len(sink.seen), sink.seen)
	}
	for i := 0; i < 3; i++ {
		if got, want := sink.seen[10+i], fmt.Sprintf("flushed-%d", i); got != want {
			t.Errorf("flush output %d = %v, want %v", i, got, want)
		}
	}
}

// TestShardedWorkerBusy checks off-thread CPU accounting reaches the
// graph's stats.
func TestShardedWorkerBusy(t *testing.T) {
	g := New()
	g.MustAdd(&appendBlock{name: "root"})
	g.MustRoot("root")
	sh := NewSharded("sharded", 2, func(i int) Block { return &shardWork{id: i} })
	g.MustAdd(sh)
	g.MustConnect("root", "sharded")
	g.MustAdd(dropBlock{"sink"})
	g.MustConnect("sharded", "sink")
	if err := g.Run(intSource(200)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sh.OffThreadBusy() <= 0 {
		t.Fatal("no off-thread busy time recorded")
	}
	var statBusy int64
	for _, st := range g.Stats() {
		if st.Name == "sharded" {
			statBusy = int64(st.Busy)
		}
	}
	if statBusy < int64(sh.OffThreadBusy()) {
		t.Errorf("stats busy %d below worker busy %d: off-thread time not folded in",
			statBusy, sh.OffThreadBusy())
	}
}

// TestShardedDemodAllocs is the steady-state allocation gate for the
// sharded scheduling machinery itself: once the ring, deques and job
// freelist are warm, pushing an item through Process and draining its
// results must not allocate (the PR-3 discipline the demod hot path
// relies on — the analyzers' own behavior is gated separately).
func TestShardedDemodAllocs(t *testing.T) {
	sh := NewSharded("sharded", 4, func(i int) Block {
		return BlockFunc{Label: fmt.Sprintf("r%d", i), Fn: func(item Item, emit func(Item)) error {
			emit(item)
			return nil
		}}
	})
	emit := func(Item) {}
	step := func() {
		for k := 0; k < 64; k++ {
			if err := sh.Process(k, emit); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the ring, the deques and the job freelist.
	for i := 0; i < 20; i++ {
		step()
	}
	avg := testing.AllocsPerRun(50, step) / 64
	if err := sh.Flush(emit); err != nil {
		t.Fatal(err)
	}
	// Allow scheduling noise well below one allocation per item.
	if avg > 0.05 {
		t.Errorf("sharded Process allocates %.3f allocs/item in steady state, want ~0", avg)
	}
}
