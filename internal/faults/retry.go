package faults

import (
	"errors"
	"time"

	"rfdump/internal/iq"
	"rfdump/internal/metrics"
)

// Retry wraps a BlockReader with bounded retry-with-backoff on transient
// errors, the front-end recovery policy for USB stalls and similar
// hiccups: a read that fails transiently is retried with exponentially
// growing delays; persistent errors (and io.EOF) pass through.
type Retry struct {
	// Src is the wrapped reader.
	Src BlockReader
	// Attempts is the total tries per block (default 4).
	Attempts int
	// Backoff is the first retry delay, doubled per retry (default 1ms).
	Backoff time.Duration
	// Sleep overrides time.Sleep (deterministic tests).
	Sleep func(time.Duration)
	// Transient classifies retryable errors; the default matches
	// errors.Is(err, ErrTransient).
	Transient func(error) bool

	// Metrics, when non-nil, also publishes the recovery ledger:
	// faults/recovered (reads that succeeded after retrying) and
	// faults/exhausted (reads that failed every attempt) — the other
	// half of the injector's faults/injected/* counters.
	Metrics *metrics.Registry

	// Retries counts reads that needed at least one retry; Exhausted
	// counts reads that failed even after all attempts.
	Retries   int64
	Exhausted int64
}

// ReadBlock implements BlockReader.
func (r *Retry) ReadBlock(dst iq.Samples) (int, error) {
	attempts := r.Attempts
	if attempts <= 0 {
		attempts = 4
	}
	delay := r.Backoff
	if delay <= 0 {
		delay = time.Millisecond
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	transient := r.Transient
	if transient == nil {
		transient = func(err error) bool { return errors.Is(err, ErrTransient) }
	}
	retried := false
	for attempt := 1; ; attempt++ {
		n, err := r.Src.ReadBlock(dst)
		if err == nil || n > 0 || !transient(err) {
			if retried {
				r.Retries++
				r.Metrics.Counter("faults/recovered").Inc()
			}
			return n, err
		}
		if attempt >= attempts {
			r.Exhausted++
			r.Metrics.Counter("faults/exhausted").Inc()
			return n, err
		}
		retried = true
		sleep(delay)
		delay *= 2
	}
}
