package faults

import (
	"errors"
	"io"
	"testing"
	"time"

	"rfdump/internal/iq"
)

// ramp serves an in-memory stream whose samples encode their own
// absolute position, so alignment is directly checkable downstream.
type ramp struct {
	n   int
	pos int
}

func (r *ramp) ReadBlock(dst iq.Samples) (int, error) {
	if r.pos >= r.n {
		return 0, io.EOF
	}
	n := len(dst)
	if n > r.n-r.pos {
		n = r.n - r.pos
	}
	for i := 0; i < n; i++ {
		dst[i] = complex(float32(r.pos+i+1), 0)
	}
	r.pos += n
	if r.pos >= r.n {
		return n, io.EOF
	}
	return n, nil
}

// drain reads everything through rd in 200-sample blocks, returning the
// concatenated stream (transient errors simply retried by the caller).
func drain(t *testing.T, rd BlockReader) iq.Samples {
	t.Helper()
	var out iq.Samples
	buf := make(iq.Samples, 200)
	for {
		n, err := rd.ReadBlock(buf)
		out = append(out, buf[:n]...)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil && !errors.Is(err, ErrTransient) {
			t.Fatalf("read: %v", err)
		}
	}
}

func TestInjectorZeroConfigTransparent(t *testing.T) {
	in := NewInjector(&ramp{n: 1000}, Config{})
	out := drain(t, in)
	if len(out) != 1000 {
		t.Fatalf("got %d samples", len(out))
	}
	for i, s := range out {
		if real(s) != float32(i+1) {
			t.Fatalf("sample %d = %v, stream mutated without faults", i, s)
		}
	}
	if in.Stats() != (Stats{}) {
		t.Errorf("stats %+v on zero config", in.Stats())
	}
}

func TestInjectorGapPreservesAlignment(t *testing.T) {
	// Gaps must zero samples, not remove them: positions after the gap
	// still match the ramp.
	in := NewInjector(&ramp{n: 20_000}, Config{Seed: 3, GapProb: 0.05, GapBlocks: 5})
	out := drain(t, in)
	if len(out) != 20_000 {
		t.Fatalf("stream length changed: %d", len(out))
	}
	st := in.Stats()
	if st.GapEvents == 0 || st.DroppedSamples == 0 {
		t.Fatalf("no gaps injected: %+v", st)
	}
	zeros := int64(0)
	for i, s := range out {
		if s == 0 {
			zeros++
		} else if real(s) != float32(i+1) {
			t.Fatalf("sample %d = %v: alignment broken", i, s)
		}
	}
	if zeros != st.DroppedSamples {
		t.Errorf("zeroed %d samples, stats say %d dropped", zeros, st.DroppedSamples)
	}
}

func TestInjectorShortReadsLoseNothing(t *testing.T) {
	in := NewInjector(&ramp{n: 50_000}, Config{Seed: 9, ShortReadProb: 0.3})
	out := drain(t, in)
	if len(out) != 50_000 {
		t.Fatalf("short reads lost samples: %d", len(out))
	}
	for i, s := range out {
		if real(s) != float32(i+1) {
			t.Fatalf("sample %d = %v", i, s)
		}
	}
	if in.Stats().ShortReads == 0 {
		t.Error("no short reads injected at prob 0.3")
	}
}

func TestInjectorCorruptionAndGlitches(t *testing.T) {
	in := NewInjector(&ramp{n: 50_000}, Config{
		Seed: 5, CorruptProb: 0.2, GainGlitchProb: 0.2, DupProb: 0.2,
	})
	out := drain(t, in)
	if len(out) != 50_000 {
		t.Fatalf("length changed: %d", len(out))
	}
	st := in.Stats()
	if st.CorruptedBlocks == 0 || st.GainGlitches == 0 || st.DupBlocks == 0 {
		t.Errorf("faults not injected: %+v", st)
	}
	mutated := 0
	for i, s := range out {
		if real(s) != float32(i+1) || imag(s) != 0 {
			mutated++
		}
	}
	if mutated == 0 {
		t.Error("no samples mutated")
	}
}

func TestInjectorTransientAndRetry(t *testing.T) {
	in := NewInjector(&ramp{n: 100_000}, Config{Seed: 11, TransientProb: 0.1})
	var slept []time.Duration
	rt := &Retry{Src: in, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	out := drain(t, rt)
	if len(out) != 100_000 {
		t.Fatalf("retry lost samples: %d", len(out))
	}
	for i, s := range out {
		if real(s) != float32(i+1) {
			t.Fatalf("sample %d = %v", i, s)
		}
	}
	if in.Stats().TransientErrors == 0 {
		t.Fatal("no transient errors at prob 0.1")
	}
	if rt.Retries == 0 || len(slept) == 0 {
		t.Errorf("retry never engaged: retries=%d sleeps=%d", rt.Retries, len(slept))
	}
	if rt.Exhausted != 0 {
		t.Errorf("%d reads exhausted retries at prob 0.1", rt.Exhausted)
	}
}

func TestRetryExhaustsOnPersistentTransient(t *testing.T) {
	always := readerFunc(func(iq.Samples) (int, error) { return 0, ErrTransient })
	rt := &Retry{Src: always, Attempts: 3, Sleep: func(time.Duration) {}}
	if _, err := rt.ReadBlock(make(iq.Samples, 10)); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if rt.Exhausted != 1 {
		t.Errorf("exhausted = %d", rt.Exhausted)
	}
}

func TestRetryPassesThroughPersistentErrors(t *testing.T) {
	boom := errors.New("hardware gone")
	calls := 0
	src := readerFunc(func(iq.Samples) (int, error) { calls++; return 0, boom })
	rt := &Retry{Src: src, Sleep: func(time.Duration) {}}
	if _, err := rt.ReadBlock(make(iq.Samples, 10)); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("non-transient error retried %d times", calls)
	}
}

type readerFunc func(dst iq.Samples) (int, error)

func (f readerFunc) ReadBlock(dst iq.Samples) (int, error) { return f(dst) }

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("gap=0.001, gapblocks=160, corrupt=0.01, short=0.02, dup=0.005, glitch=0.004, transient=0.03, corruptfrac=0.1, seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GapProb != 0.001 || cfg.GapBlocks != 160 || cfg.CorruptProb != 0.01 ||
		cfg.ShortReadProb != 0.02 || cfg.DupProb != 0.005 || cfg.GainGlitchProb != 0.004 ||
		cfg.TransientProb != 0.03 || cfg.CorruptFrac != 0.1 || cfg.Seed != 7 {
		t.Errorf("parsed %+v", cfg)
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseSpec("gap"); err == nil {
		t.Error("missing value accepted")
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
}
