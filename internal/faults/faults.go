// Package faults injects receive-chain impairments into a live sample
// source — the failure modes real SDR monitors see between the antenna
// and the host (USRP buffer overflows, runt USB transfers, stale DMA
// buffers, AGC glitches, transient bus errors) — so the resilience of
// the streaming pipeline can be tested and demonstrated without
// hardware. It wraps any BlockReader (frontend.SampleSource satisfies
// it) and is deterministic for a given seed.
//
// Fault taxonomy:
//
//   - Overflow gap: a burst of consecutive blocks is lost in the receive
//     chain. The host keeps its sample clock (real receivers timestamp
//     their streams and re-align after an overflow), so lost spans are
//     delivered as silence rather than shortening the stream.
//   - Sample corruption: a fraction of a block's samples replaced by
//     full-scale garbage (bus bit errors, ADC glitches).
//   - Short read: a runt transfer delivering only a prefix of the
//     requested block; no samples are lost, the next read continues.
//   - Duplicate block: a stale DMA buffer delivered again — the stream
//     position advances but the content is the previous block's.
//   - Gain glitch: a block scaled by a spurious AGC step.
//   - Transient error: the read fails outright (USB stall); retrying
//     succeeds. See Retry for the bounded retry-with-backoff wrapper.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"rfdump/internal/iq"
	"rfdump/internal/metrics"
)

// BlockReader is the minimal live-input contract, matching
// core.BlockReader and frontend.SampleSource.
type BlockReader interface {
	ReadBlock(dst iq.Samples) (int, error)
}

// ErrTransient marks an injected transient read error; wrapped errors
// match with errors.Is.
var ErrTransient = errors.New("transient read error")

// Config sets per-read fault probabilities. All probabilities default to
// zero (fault disabled); the zero Config injects nothing.
type Config struct {
	// Seed makes the injection deterministic.
	Seed int64
	// GapProb is the per-read probability of starting an overflow gap of
	// GapBlocks blocks (delivered as silence).
	GapProb float64
	// GapBlocks is the gap length in blocks (default 100).
	GapBlocks int
	// CorruptProb is the per-read probability of corrupting a block;
	// CorruptFrac of its samples (default 0.02) are replaced.
	CorruptProb float64
	CorruptFrac float64
	// ShortReadProb is the per-read probability of a runt transfer.
	ShortReadProb float64
	// DupProb is the per-read probability of delivering the previous
	// block's content again.
	DupProb float64
	// GainGlitchProb is the per-read probability of scaling the block by
	// a spurious gain in [GainLow, GainHigh] (defaults 0.05, 2.5).
	GainGlitchProb float64
	GainLow        float64
	GainHigh       float64
	// TransientProb is the per-read probability of a failed read that
	// succeeds when retried.
	TransientProb float64
}

// Stats counts injected faults.
type Stats struct {
	GapEvents        int64
	DroppedBlocks    int64
	DroppedSamples   int64
	CorruptedBlocks  int64
	CorruptedSamples int64
	ShortReads       int64
	DupBlocks        int64
	GainGlitches     int64
	TransientErrors  int64
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf(
		"faults: %d gaps (%d blocks, %d samples), %d corrupted blocks (%d samples), %d short reads, %d dups, %d gain glitches, %d transient errors",
		s.GapEvents, s.DroppedBlocks, s.DroppedSamples,
		s.CorruptedBlocks, s.CorruptedSamples,
		s.ShortReads, s.DupBlocks, s.GainGlitches, s.TransientErrors)
}

// injectorMetrics holds the per-kind injected-fault counters. The zero
// value (all nil) discards updates, so an uninstrumented injector pays
// only a nil check per fault event.
type injectorMetrics struct {
	gaps, droppedBlocks, droppedSamples   *metrics.Counter
	corruptBlocks, corruptSamples         *metrics.Counter
	shortReads, dups, glitches, transient *metrics.Counter
}

// Injector wraps a BlockReader with fault injection. Not safe for
// concurrent use (streams are read by one scheduler goroutine).
type Injector struct {
	src     BlockReader
	cfg     Config
	rng     *rand.Rand
	stats   Stats
	gapLeft int
	prev    iq.Samples
	m       injectorMetrics
}

// InstrumentMetrics publishes per-kind injected-fault counters into reg
// under faults/injected/* (no-op on nil). Together with the Retry
// wrapper's faults/recovered and faults/exhausted counters this gives
// the injected-vs-recovered ledger.
func (in *Injector) InstrumentMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	in.m = injectorMetrics{
		gaps:           reg.Counter("faults/injected/gap_events"),
		droppedBlocks:  reg.Counter("faults/injected/dropped_blocks"),
		droppedSamples: reg.Counter("faults/injected/dropped_samples"),
		corruptBlocks:  reg.Counter("faults/injected/corrupt_blocks"),
		corruptSamples: reg.Counter("faults/injected/corrupt_samples"),
		shortReads:     reg.Counter("faults/injected/short_reads"),
		dups:           reg.Counter("faults/injected/dup_blocks"),
		glitches:       reg.Counter("faults/injected/gain_glitches"),
		transient:      reg.Counter("faults/injected/transient_errors"),
	}
}

// NewInjector wraps src.
func NewInjector(src BlockReader, cfg Config) *Injector {
	if cfg.GapBlocks <= 0 {
		cfg.GapBlocks = 100
	}
	if cfg.CorruptFrac <= 0 {
		cfg.CorruptFrac = 0.02
	}
	if cfg.GainLow <= 0 {
		cfg.GainLow = 0.05
	}
	if cfg.GainHigh <= 0 {
		cfg.GainHigh = 2.5
	}
	return &Injector{src: src, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the injection counters so far.
func (in *Injector) Stats() Stats { return in.stats }

func (in *Injector) hit(p float64) bool {
	return p > 0 && in.rng.Float64() < p
}

// ReadBlock implements BlockReader.
func (in *Injector) ReadBlock(dst iq.Samples) (int, error) {
	if in.gapLeft == 0 && in.hit(in.cfg.TransientProb) {
		in.stats.TransientErrors++
		in.m.transient.Inc()
		return 0, fmt.Errorf("faults: usb bus stall: %w", ErrTransient)
	}
	if in.gapLeft == 0 && in.hit(in.cfg.GapProb) {
		in.stats.GapEvents++
		in.m.gaps.Inc()
		in.gapLeft = in.cfg.GapBlocks
	}
	if in.gapLeft > 0 {
		// Overflow: consume the real samples underneath, deliver silence
		// (the receive chain lost them; the sample clock is kept).
		in.gapLeft--
		n, err := in.src.ReadBlock(dst)
		for i := range dst[:n] {
			dst[i] = 0
		}
		if n > 0 {
			in.stats.DroppedBlocks++
			in.stats.DroppedSamples += int64(n)
			in.m.droppedBlocks.Inc()
			in.m.droppedSamples.Add(int64(n))
		}
		in.remember(dst[:n])
		return n, err
	}

	if in.hit(in.cfg.ShortReadProb) && len(dst) > 1 {
		// Runt transfer: read only a prefix; nothing is lost, the next
		// read picks up where the source left off.
		in.stats.ShortReads++
		in.m.shortReads.Inc()
		dst = dst[:1+in.rng.Intn(len(dst)-1)]
	}
	n, err := in.src.ReadBlock(dst)
	if n == 0 {
		return n, err
	}
	block := dst[:n]

	if in.hit(in.cfg.DupProb) && len(in.prev) > 0 {
		in.stats.DupBlocks++
		in.m.dups.Inc()
		m := copy(block, in.prev)
		for i := m; i < len(block); i++ {
			block[i] = 0
		}
	}
	if in.hit(in.cfg.CorruptProb) {
		k := int(float64(len(block)) * in.cfg.CorruptFrac)
		if k < 1 {
			k = 1
		}
		in.stats.CorruptedBlocks++
		in.stats.CorruptedSamples += int64(k)
		in.m.corruptBlocks.Inc()
		in.m.corruptSamples.Add(int64(k))
		for i := 0; i < k; i++ {
			j := in.rng.Intn(len(block))
			block[j] = complex(
				float32((in.rng.Float64()*2-1)*64),
				float32((in.rng.Float64()*2-1)*64))
		}
	}
	if in.hit(in.cfg.GainGlitchProb) {
		in.stats.GainGlitches++
		in.m.glitches.Inc()
		g := float32(in.cfg.GainLow + in.rng.Float64()*(in.cfg.GainHigh-in.cfg.GainLow))
		for i := range block {
			block[i] *= complex(g, 0)
		}
	}
	in.remember(block)
	return n, err
}

// remember keeps the delivered block for the duplicate fault.
func (in *Injector) remember(block iq.Samples) {
	in.prev = append(in.prev[:0], block...)
}

// ParseSpec parses a comma-separated fault spec like
// "gap=0.001,gapblocks=160,corrupt=0.01,short=0.01,dup=0.005,glitch=0.005,transient=0.01,seed=7".
// Unknown keys are an error; omitted keys keep their zero/default value.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad spec entry %q (want key=value)", kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "seed", "gapblocks":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: %s: %v", key, err)
			}
			if key == "seed" {
				cfg.Seed = n
			} else {
				cfg.GapBlocks = int(n)
			}
		default:
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("faults: %s: %v", key, err)
			}
			switch key {
			case "gap":
				cfg.GapProb = p
			case "corrupt":
				cfg.CorruptProb = p
			case "corruptfrac":
				cfg.CorruptFrac = p
			case "short":
				cfg.ShortReadProb = p
			case "dup":
				cfg.DupProb = p
			case "glitch":
				cfg.GainGlitchProb = p
			case "transient":
				cfg.TransientProb = p
			default:
				return cfg, fmt.Errorf("faults: unknown spec key %q", key)
			}
		}
	}
	return cfg, nil
}
