package wire

import (
	"bufio"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"

	"rfdump/internal/iq"
)

// Counts is a snapshot of a decoder's accounting: how much arrived, and
// every way the stream misbehaved. All paths are counted rather than
// fatal — a long-running daemon reports corruption, it does not die of
// it.
type Counts struct {
	// Frames and Samples count successfully decoded frames (control
	// frames included) and data payload samples.
	Frames  int64 `json:"frames"`
	Samples int64 `json:"samples"`
	// Heartbeats counts keep-alive control frames.
	Heartbeats int64 `json:"heartbeats,omitempty"`
	// ResyncBytes counts bytes skipped while hunting for a valid header
	// after framing was lost (bad magic, header CRC, version, count).
	ResyncBytes int64 `json:"resync_bytes"`
	// BadFrames counts frames dropped for a payload CRC mismatch.
	BadFrames int64 `json:"bad_frames"`
	// SeqGaps counts discontinuities in the frame sequence number.
	SeqGaps int64 `json:"seq_gaps"`
	// CleanEnd reports that the transmitter sent an End frame (as
	// opposed to the connection just going away).
	CleanEnd bool `json:"clean_end"`
}

// Decoder reads wire frames from a byte stream and hands the samples out
// through ReadBlock — it implements the pipeline's BlockReader contract,
// so a streaming Session can pull pooled blocks straight off a socket.
// Steady state performs no allocations: the header scratch is fixed, the
// payload scratch grows to the largest frame seen and is reused, and
// samples decode directly into the caller's buffer.
//
// A Decoder is driven by one reader goroutine; Counts may be read
// concurrently (the counters are atomic).
type Decoder struct {
	br  *bufio.Reader
	hdr [HeaderSize]byte

	// Current frame payload and drain offset (bytes).
	payload []byte
	off     int

	meta    StreamMeta
	started bool
	lastSeq uint32
	end     bool // End frame seen; EOF after the payload drains
	err     error

	// hook, when set, fires on every valid frame (control frames
	// included) from the reader goroutine — a server uses it to refresh
	// read deadlines and liveness clocks without a second timer.
	hook func(FrameHeader)

	// resume is the ResumeInfo of the latest FlagResume control frame.
	hasResume bool
	resume    ResumeInfo

	frames      atomic.Int64
	samples     atomic.Int64
	heartbeats  atomic.Int64
	resyncBytes atomic.Int64
	badFrames   atomic.Int64
	seqGaps     atomic.Int64
	cleanEnd    atomic.Bool
}

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 1<<16)}
}

// SetFrameHook registers fn to run on every valid frame header, on the
// decoder's reader goroutine. Set it before the first read.
func (d *Decoder) SetFrameHook(fn func(FrameHeader)) { d.hook = fn }

// Counts returns the decoder's accounting snapshot (safe to call from
// other goroutines while the decoder runs).
func (d *Decoder) Counts() Counts {
	return Counts{
		Frames:      d.frames.Load(),
		Samples:     d.samples.Load(),
		Heartbeats:  d.heartbeats.Load(),
		ResyncBytes: d.resyncBytes.Load(),
		BadFrames:   d.badFrames.Load(),
		SeqGaps:     d.seqGaps.Load(),
		CleanEnd:    d.cleanEnd.Load(),
	}
}

// Meta returns the stream metadata from the first valid frame header,
// reading it if necessary. It is how a server learns what a new
// connection carries before opening a session for it. Control frames
// (heartbeat, resume) satisfy it — a reconnecting client's resume frame
// completes the handshake without waiting for data.
func (d *Decoder) Meta() (StreamMeta, error) {
	for !d.started {
		if _, err := d.step(); err != nil {
			return StreamMeta{}, err
		}
	}
	return d.meta, nil
}

// Resume returns the ledger of the latest resume control frame, if one
// arrived. Call after Meta: a resuming client sends it first.
func (d *Decoder) Resume() (ResumeInfo, bool) { return d.resume, d.hasResume }

// ClearTimeout forgets a deadline-expiry error so reading can continue
// on a connection that was nudged (or idle-timed-out) but deliberately
// kept: the expired read is the only casualty, the stream resumes with
// the next frame. Non-timeout errors stay fatal.
func (d *Decoder) ClearTimeout() {
	var ne net.Error
	if d.err != nil && errors.As(d.err, &ne) && ne.Timeout() {
		d.err = nil
	}
}

// nextFrame reads frames until one with a valid header and payload is
// current (resynchronizing and dropping as needed), or the stream ends.
// On success the frame's payload (possibly empty) is staged for
// draining. Returns io.EOF when the stream is over.
func (d *Decoder) nextFrame() error {
	for {
		staged, err := d.step()
		if err != nil {
			return err
		}
		if staged {
			return nil
		}
	}
}

// step decodes exactly one frame (hunting for a valid header first if
// framing was lost). It returns staged=true when a data payload is
// ready to drain; control frames and empty data frames return
// staged=false and the caller loops.
func (d *Decoder) step() (staged bool, err error) {
	if d.end {
		return false, io.EOF
	}
	// Fill the header scratch, then slide byte-by-byte until it
	// parses. The slide path is the resync rule: corruption costs
	// the bytes it damaged, never the stream.
	if _, err := io.ReadFull(d.br, d.hdr[:]); err != nil {
		return false, d.endErr(err)
	}
	h, herr := ParseHeader(d.hdr[:])
	for herr != nil {
		d.resyncBytes.Add(1)
		copy(d.hdr[:], d.hdr[1:])
		b, rerr := d.br.ReadByte()
		if rerr != nil {
			return false, d.endErr(rerr)
		}
		d.hdr[HeaderSize-1] = b
		h, herr = ParseHeader(d.hdr[:])
	}

	need := int(h.Count) * 8
	if cap(d.payload) < need {
		d.payload = make([]byte, need)
	}
	buf := d.payload[:need]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return false, d.endErr(err)
	}
	if need > 0 && crc32.ChecksumIEEE(buf) != h.PayloadCRC {
		// Framing is intact (header CRC passed); only this frame's
		// samples are damaged. Drop it and keep going.
		d.badFrames.Add(1)
		return false, nil
	}

	if !d.started {
		d.started = true
		d.meta = StreamMeta{StreamID: h.Stream, Rate: int(h.Rate), CenterHz: h.CenterHz}
	} else if h.Seq != d.lastSeq+1 {
		d.seqGaps.Add(1)
	}
	d.lastSeq = h.Seq
	d.frames.Add(1)
	if d.hook != nil {
		d.hook(h)
	}
	if h.End() {
		d.end = true
		d.cleanEnd.Store(true)
	}

	// Control frames never stage samples: their payload (if any) is
	// protocol data, not air.
	if h.Flags&(FlagResume|FlagHeartbeat) != 0 {
		if h.Flags&FlagResume != 0 {
			if ri, rerr := parseResume(buf); rerr == nil {
				d.resume, d.hasResume = ri, true
			}
		} else {
			d.heartbeats.Add(1)
		}
		// buf may alias (or have just re-allocated) the payload scratch;
		// mark it fully drained so none of it reads back as samples.
		d.off = len(d.payload)
		if d.end {
			return false, io.EOF
		}
		return false, nil
	}

	d.payload = buf
	d.off = 0
	if need == 0 {
		if d.end {
			return false, io.EOF
		}
		return false, nil
	}
	return true, nil
}

// endErr maps a transport error at a frame boundary (or mid-frame) into
// the stream-end contract: a clean End frame was the only clean ending,
// everything else is a dirty end, but both surface as io.EOF so the
// consuming session drains instead of aborting — the daemon equivalent
// of tcpdump surviving an interface glitch. Genuine transport errors
// other than EOF pass through for the caller to log.
func (d *Decoder) endErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		d.end = true
		return io.EOF
	}
	return err
}

// avail returns the undrained samples of the current frame.
func (d *Decoder) avail() int { return (len(d.payload) - d.off) / 8 }

// ReadBlock implements the BlockReader contract: it fills dst with the
// next samples of the stream, crossing frame boundaries so chunking is
// independent of the transmitter's frame size (a stream decodes
// identically however it was framed). Returns io.EOF — possibly
// alongside a final short block — when the stream ends.
func (d *Decoder) ReadBlock(dst iq.Samples) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	n := 0
	for n < len(dst) {
		if d.avail() == 0 {
			if err := d.nextFrame(); err != nil {
				d.err = err
				break
			}
		}
		k := len(dst) - n
		if a := d.avail(); k > a {
			k = a
		}
		getSamples(dst[n:n+k], d.payload[d.off:])
		d.off += k * 8
		n += k
	}
	if n > 0 {
		d.samples.Add(int64(n))
	}
	if n == 0 {
		return 0, d.err
	}
	return n, d.err
}
