package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfdump/internal/iq"
)

// TestHeartbeatResumeRoundTrip proves the two control frames survive the
// codec: a resume ledger is parsed and surfaced via Resume(), heartbeats
// are counted and neither stages any samples.
func TestHeartbeatResumeRoundTrip(t *testing.T) {
	meta := StreamMeta{StreamID: 9, Rate: 8_000_000}
	ri := ResumeInfo{
		Epoch:          3,
		SentFrames:     120,
		SentSamples:    100_000,
		DroppedFrames:  2,
		DroppedSamples: 2048,
	}
	want := ramp(4096, 1)

	var buf bytes.Buffer
	c := NewClient(&buf, meta)
	c.SetFrameSamples(1024)
	if err := c.SendResume(ri); err != nil {
		t.Fatal(err)
	}
	if err := c.Heartbeat(); err != nil {
		t.Fatal(err)
	}
	if err := c.SendSamples(want); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(bytes.NewReader(buf.Bytes()))
	got, err := d.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta %+v, want %+v", got, meta)
	}
	// The resume frame leads the stream, so the handshake must be
	// visible as soon as Meta returns — that is the contract the daemon
	// relies on to attach the connection to the right stream.
	r, ok := d.Resume()
	if !ok {
		t.Fatal("resume not visible after Meta")
	}
	if r != ri {
		t.Fatalf("resume %+v, want %+v", r, ri)
	}
	if r.Offset() != 102_048 {
		t.Fatalf("Offset() = %d, want 102048", r.Offset())
	}
	out := drain(t, d, 300)
	if len(out) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(want))
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
	counts := d.Counts()
	if counts.Heartbeats != 1 {
		t.Errorf("Heartbeats = %d, want 1", counts.Heartbeats)
	}
	if !counts.CleanEnd {
		t.Error("clean end not recorded")
	}
	if counts.Samples != int64(len(want)) {
		t.Errorf("Samples = %d, want %d", counts.Samples, len(want))
	}
}

// TestResumeEncodingRejectsShortPayload covers the codec's guard against
// truncated resume control frames.
func TestResumeEncodingRejectsShortPayload(t *testing.T) {
	if _, err := parseResume(make([]byte, ResumePayloadBytes-1)); err == nil {
		t.Fatal("parseResume accepted a short payload")
	}
	if _, err := parseResume(make([]byte, ResumePayloadBytes+8)); err == nil {
		t.Fatal("parseResume accepted an oversized payload")
	}
}

// TestWriteDeadlineBoundsStalledSend proves a transmitter facing a peer
// that never reads fails the send in bounded time instead of hanging
// forever once the kernel buffers fill.
func TestWriteDeadlineBoundsStalledSend(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c // hold it open, never read
	}()

	c, err := DialTimeout(ln.Addr().String(), StreamMeta{StreamID: 1, Rate: 8_000_000},
		time.Second, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	defer func() {
		if conn := <-accepted; conn != nil {
			conn.Close()
		}
	}()

	// 2 MB frames against a reader that never drains: the socket buffer
	// absorbs a few, then the write deadline must fire.
	frame := make(iq.Samples, 1<<18)
	start := time.Now()
	var sendErr error
	for i := 0; i < 64; i++ {
		if sendErr = c.SendFrame(frame); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("64 frames (128 MB) swallowed with no reader; write deadline never fired")
	}
	var ne net.Error
	if !errors.As(sendErr, &ne) || !ne.Timeout() {
		t.Fatalf("send error = %v, want a timeout", sendErr)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("send took %v to fail; deadline not bounding writes", elapsed)
	}
}

// TestNudgeSurvivedByLiveConnection is the regression test for the drain
// supervision: a Nudge unblocks a pending read with a timeout, but a
// connection that outlives the nudge (server not stopping) must have its
// deadline and sticky decoder error reset so subsequent reads succeed.
func TestNudgeSurvivedByLiveConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type readResult struct {
		n   int
		err error
	}
	conns := make(chan *Conn, 1)
	readCmd := make(chan int)
	results := make(chan readResult)
	srv := NewServer(func(c *Conn) {
		if _, err := c.Meta(); err != nil {
			t.Errorf("Meta: %v", err)
			return
		}
		conns <- c
		buf := make(iq.Samples, 4096)
		for n := range readCmd {
			k, err := c.ReadBlock(buf[:n])
			results <- readResult{k, err}
		}
	})
	go srv.Serve(ln)
	defer srv.Close()

	client, err := Dial(ln.Addr().String(), StreamMeta{StreamID: 2, Rate: 8_000_000})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Abort()
	if err := client.SendFrame(ramp(1024, 1)); err != nil {
		t.Fatal(err)
	}
	conn := <-conns

	// First read drains the frame normally.
	readCmd <- 1024
	if r := <-results; r.n != 1024 || r.err != nil {
		t.Fatalf("first read = (%d, %v), want (1024, nil)", r.n, r.err)
	}

	// Second read blocks (no data pending); nudge it loose.
	readCmd <- 1024
	time.Sleep(50 * time.Millisecond)
	conn.Nudge()
	r := <-results
	if r.err == nil {
		t.Fatal("nudged read returned no error")
	}
	var ne net.Error
	if !errors.As(r.err, &ne) || !ne.Timeout() {
		t.Fatalf("nudged read error = %v, want a timeout", r.err)
	}

	// The server is NOT stopping, so the connection survived the nudge.
	// The next read must recover: deadline re-armed, sticky timeout
	// cleared, fresh frame delivered.
	if err := client.SendFrame(ramp(1024, 9000)); err != nil {
		t.Fatal(err)
	}
	readCmd <- 1024
	select {
	case r = <-results:
	case <-time.After(5 * time.Second):
		t.Fatal("post-nudge read did not complete")
	}
	if r.n != 1024 || r.err != nil {
		t.Fatalf("post-nudge read = (%d, %v), want (1024, nil)", r.n, r.err)
	}
	close(readCmd)
}

// flakyResult is what one accepted connection observed: the resume
// handshake it opened with (nil for the first epoch) and the samples it
// actually delivered to the decoder.
type flakyResult struct {
	resume   *ResumeInfo
	epoch    int
	samples  int64
	cleanEnd bool
}

// TestReconnectClientStitchesAcrossKills runs a ReconnectClient against
// a server that hard-kills the first two connections mid-stream and
// checks the ledger invariant that makes loss visible: samples the
// server delivered plus the gaps the resumes declare equals exactly what
// the client counted as sent.
func TestReconnectClientStitchesAcrossKills(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var (
		mu      sync.Mutex
		results []flakyResult
		wg      sync.WaitGroup
	)
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(i int, conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				dec := NewDecoder(conn)
				if _, err := dec.Meta(); err != nil {
					return
				}
				var fr flakyResult
				fr.epoch = i
				if ri, ok := dec.Resume(); ok {
					fr.resume = &ri
				}
				buf := make(iq.Samples, 512)
				kill := i < 2
				for {
					n, err := dec.ReadBlock(buf)
					fr.samples += int64(n)
					if kill && fr.samples >= 3*1024 {
						if tc, ok := conn.(*net.TCPConn); ok {
							tc.SetLinger(0) // RST: a crash, not a goodbye
						}
						conn.Close()
						break
					}
					if err != nil {
						break
					}
				}
				fr.cleanEnd = dec.Counts().CleanEnd
				mu.Lock()
				results = append(results, fr)
				mu.Unlock()
			}(i, conn)
		}
	}()

	rc := NewReconnectClient(ln.Addr().String(), StreamMeta{StreamID: 5, Rate: 8_000_000},
		ReconnectConfig{
			MinBackoff:   time.Millisecond,
			MaxBackoff:   10 * time.Millisecond,
			WriteTimeout: time.Second,
			FrameSamples: 1024,
			Seed:         42,
		})
	// 16 MB of stream: far past what loopback socket buffers can swallow,
	// so the client is still transmitting when the kills land.
	const frames = 2000
	payload := ramp(1024, 1)
	for i := 0; i < frames; i++ {
		if err := rc.SendFrame(payload); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	stats := rc.Stats()
	ln.Close()
	wg.Wait()

	if stats.Reconnects < 2 {
		t.Fatalf("Reconnects = %d, want >= 2 (both kills must force a redial)", stats.Reconnects)
	}
	if stats.DroppedSamples != 0 || stats.DroppedFrames != 0 {
		t.Fatalf("MaxDown=0 client shed %d frames / %d samples; must block, never drop",
			stats.DroppedFrames, stats.DroppedSamples)
	}
	if stats.SentSamples != frames*1024 {
		t.Fatalf("SentSamples = %d, want %d", stats.SentSamples, frames*1024)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(results) < 3 {
		t.Fatalf("server observed %d connections, want >= 3", len(results))
	}
	// Order by accept sequence and replay the hub's gap arithmetic: each
	// resume declares how much was sent before its epoch; anything not
	// yet accounted (delivered or already priced as gap) by then is new
	// gap.
	sort.Slice(results, func(i, j int) bool { return results[i].epoch < results[j].epoch })
	var delivered, gaps int64
	for _, fr := range results {
		if fr.resume != nil {
			g := int64(fr.resume.SentSamples) - delivered - gaps
			if g < 0 {
				t.Fatalf("epoch %d resume claims %d sent but %d already accounted (duplicates?)",
					fr.epoch, fr.resume.SentSamples, delivered+gaps)
			}
			gaps += g
		}
		delivered += fr.samples
	}
	if delivered+gaps != int64(stats.SentSamples) {
		t.Fatalf("delivered %d + gaps %d = %d, want %d: samples silently lost",
			delivered, gaps, delivered+gaps, stats.SentSamples)
	}
	last := results[len(results)-1]
	if !last.cleanEnd {
		t.Error("final epoch did not end cleanly")
	}
	t.Logf("delivered=%d gaps=%d reconnects=%d writeFailures=%d",
		delivered, gaps, stats.Reconnects, stats.WriteFailures)
}

// TestReconnectMaxDownSheds proves the bounded-blocking policy: with the
// link down past MaxDown the send returns nil and the payload is
// accounted as dropped, and the first successful connection afterwards
// declares the shed payload in its resume ledger.
func TestReconnectMaxDownSheds(t *testing.T) {
	var (
		dialOK atomic.Bool
		sink   bytes.Buffer // guarded by rc.mu: every send path holds it
	)
	meta := StreamMeta{StreamID: 11, Rate: 8_000_000}
	rc := NewReconnectClient("unused", meta, ReconnectConfig{
		MinBackoff:   time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
		MaxDown:      30 * time.Millisecond,
		FrameSamples: 512,
		DialFunc: func(addr string, m StreamMeta) (*Client, error) {
			if !dialOK.Load() {
				return nil, fmt.Errorf("dial: link down")
			}
			return NewClient(&sink, m), nil
		},
	})

	shed := ramp(512, 1)
	if err := rc.SendFrame(shed); err != nil {
		t.Fatalf("SendFrame while down = %v, want nil (shed)", err)
	}
	stats := rc.Stats()
	if stats.DroppedFrames != 1 || stats.DroppedSamples != 512 {
		t.Fatalf("dropped = (%d frames, %d samples), want (1, 512)",
			stats.DroppedFrames, stats.DroppedSamples)
	}
	if stats.DialFailures == 0 {
		t.Error("no dial failures recorded during the outage")
	}

	// Link returns: the next send must connect, declare the leading gap
	// via a resume ledger, and deliver.
	dialOK.Store(true)
	kept := ramp(512, 7000)
	if err := rc.SendFrame(kept); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}

	d := NewDecoder(bytes.NewReader(sink.Bytes()))
	if _, err := d.Meta(); err != nil {
		t.Fatal(err)
	}
	ri, ok := d.Resume()
	if !ok {
		t.Fatal("first connection after shedding sent no resume ledger; shed samples silently lost")
	}
	if ri.DroppedFrames != 1 || ri.DroppedSamples != 512 {
		t.Fatalf("resume dropped = (%d, %d), want (1, 512)", ri.DroppedFrames, ri.DroppedSamples)
	}
	if ri.SentSamples != 0 {
		t.Fatalf("resume SentSamples = %d, want 0 (nothing delivered before)", ri.SentSamples)
	}
	out := drain(t, d, 128)
	if len(out) != len(kept) {
		t.Fatalf("delivered %d samples, want %d", len(out), len(kept))
	}
	for i := range out {
		if out[i] != kept[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], kept[i])
		}
	}
	if !d.Counts().CleanEnd {
		t.Error("stream did not end cleanly")
	}
}

// TestReconnectEndDoesNotRedial: End on a dead link reports nothing to
// say and stays down — the receiver's dirty-end accounting is the truth.
func TestReconnectEndDoesNotRedial(t *testing.T) {
	dials := 0
	rc := NewReconnectClient("unused", StreamMeta{StreamID: 3, Rate: 8_000_000},
		ReconnectConfig{
			MinBackoff: time.Millisecond,
			MaxDown:    5 * time.Millisecond,
			DialFunc: func(addr string, m StreamMeta) (*Client, error) {
				dials++
				return nil, fmt.Errorf("down")
			},
		})
	if err := rc.End(); err != nil {
		t.Fatalf("End on a down link = %v, want nil", err)
	}
	if dials != 0 {
		t.Fatalf("End dialed %d times; must not redial", dials)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.SendFrame(make(iq.Samples, 8)); err == nil {
		t.Fatal("SendFrame after End/Close succeeded")
	}
}
