package wire

import (
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"rfdump/internal/iq"
)

// DefaultFrameSamples is the default transmit frame payload: 4096
// samples (512 us of air at 8 Msps, 32 KiB on the wire) — large enough
// to amortize the 40-byte header, small enough that -realtime pacing
// stays smooth.
const DefaultFrameSamples = 4096

const (
	// DefaultDialTimeout bounds Dial: an unreachable daemon fails the
	// dial instead of hanging the transmitter in SYN retries.
	DefaultDialTimeout = 10 * time.Second
	// DefaultWriteTimeout bounds each frame write on dialed clients: a
	// wedged daemon (accepting but never reading) fills the socket
	// buffers and then fails the write instead of hanging rfgen -stream
	// forever.
	DefaultWriteTimeout = 30 * time.Second
)

// deadlineWriter is the subset of net.Conn the client needs to bound
// frame writes.
type deadlineWriter interface {
	SetWriteDeadline(t time.Time) error
}

// Client transmits one IQ stream as wire frames. It is the front-end
// side of the protocol: a USRP bridge, or rfgen -stream exercising the
// daemon without hardware. Not safe for concurrent use; one stream, one
// goroutine.
type Client struct {
	w       io.Writer
	dw      deadlineWriter // non-nil when write deadlines are armed
	writeTO time.Duration
	closer  io.Closer
	meta    StreamMeta
	seq     uint32
	frames  int64
	sent    int64
	hdr     [HeaderSize]byte
	resume  [ResumePayloadBytes]byte
	buf     []byte // payload scratch, reused across frames
	frame   int    // samples per frame for SendSamples
	ended   bool
}

// NewClient wraps w as a frame transmitter for the given stream.
func NewClient(w io.Writer, meta StreamMeta) *Client {
	if meta.Rate <= 0 {
		meta.Rate = iq.DefaultSampleRate
	}
	return &Client{w: w, meta: meta, frame: DefaultFrameSamples}
}

// Dial connects to a wire server with the default dial and write
// timeouts and returns a transmitter; Close sends the End frame and
// closes the connection.
func Dial(addr string, meta StreamMeta) (*Client, error) {
	return DialTimeout(addr, meta, DefaultDialTimeout, DefaultWriteTimeout)
}

// DialTimeout is Dial with explicit bounds: dialTO caps the TCP
// connect (≤0 takes DefaultDialTimeout), writeTO caps each frame write
// (0 disables write deadlines, <0 takes the default).
func DialTimeout(addr string, meta StreamMeta, dialTO, writeTO time.Duration) (*Client, error) {
	if dialTO <= 0 {
		dialTO = DefaultDialTimeout
	}
	if writeTO < 0 {
		writeTO = DefaultWriteTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, meta)
	c.closer = conn
	c.SetWriteTimeout(writeTO)
	return c, nil
}

// SetWriteTimeout arms a per-frame write deadline (0 disables). It is a
// no-op when the underlying writer cannot carry deadlines.
func (c *Client) SetWriteTimeout(d time.Duration) {
	c.writeTO = d
	c.dw = nil
	if d > 0 {
		if dw, ok := c.w.(deadlineWriter); ok {
			c.dw = dw
		}
	}
}

// SetFrameSamples sets the per-frame payload SendSamples splits into.
func (c *Client) SetFrameSamples(n int) {
	if n <= 0 || n > MaxFrameSamples {
		n = DefaultFrameSamples
	}
	c.frame = n
}

// FrameSamples returns the per-frame payload SendSamples splits into.
func (c *Client) FrameSamples() int { return c.frame }

// Meta returns the stream metadata stamped on every frame.
func (c *Client) Meta() StreamMeta { return c.meta }

// FramesSent returns the number of frames transmitted (End, heartbeat
// and resume frames included).
func (c *Client) FramesSent() int64 { return c.frames }

// SamplesSent returns the number of payload samples transmitted.
func (c *Client) SamplesSent() int64 { return c.sent }

// SendFrame transmits one frame carrying exactly the given samples
// (at most MaxFrameSamples). The encode scratch is reused, so steady
// state allocates nothing.
func (c *Client) SendFrame(samples iq.Samples) error {
	return c.send(samples, 0)
}

// SendSamples transmits a sample run as a sequence of frames of the
// configured frame size.
func (c *Client) SendSamples(samples iq.Samples) error {
	for len(samples) > 0 {
		n := c.frame
		if n > len(samples) {
			n = len(samples)
		}
		if err := c.send(samples[:n], 0); err != nil {
			return err
		}
		samples = samples[n:]
	}
	return nil
}

// Heartbeat transmits an empty keep-alive frame: proof of life for the
// receiver's idle timer, and — because a dead peer eventually fails the
// bounded write — a probe that surfaces half-open connections on this
// side too.
func (c *Client) Heartbeat() error {
	return c.sendPayload(nil, FlagHeartbeat)
}

// SendResume transmits the reconnect handshake: a control frame whose
// payload carries the client's cumulative transmit ledger, so the
// receiving daemon can stitch this connection onto the stream's
// previous epochs and account the gap.
func (c *Client) SendResume(r ResumeInfo) error {
	encodeResume(c.resume[:], r)
	return c.sendPayload(c.resume[:], FlagResume)
}

func (c *Client) send(samples iq.Samples, flags uint16) error {
	if len(samples) > MaxFrameSamples {
		return fmt.Errorf("wire: frame of %d samples exceeds max %d", len(samples), MaxFrameSamples)
	}
	need := len(samples) * 8
	if cap(c.buf) < need {
		c.buf = make([]byte, need)
	}
	buf := c.buf[:need]
	putSamples(buf, samples)
	if err := c.sendPayload(buf, flags); err != nil {
		return err
	}
	c.sent += int64(len(samples))
	return nil
}

// sendPayload frames and writes one payload (already encoded bytes, a
// multiple of the 8-byte sample unit). All transmit paths funnel here:
// it owns the header, CRCs, sequence numbers and the write deadline.
func (c *Client) sendPayload(payload []byte, flags uint16) error {
	if c.ended {
		return fmt.Errorf("wire: send after End frame")
	}
	h := FrameHeader{
		Version:  Version,
		Flags:    flags,
		Stream:   c.meta.StreamID,
		Seq:      c.seq,
		Rate:     uint32(c.meta.Rate),
		CenterHz: c.meta.CenterHz,
		Count:    uint32(len(payload) / 8),
	}
	if len(payload) > 0 {
		h.PayloadCRC = crc32.ChecksumIEEE(payload)
	}
	encodeHeader(c.hdr[:], h)
	if c.dw != nil {
		_ = c.dw.SetWriteDeadline(time.Now().Add(c.writeTO))
	}
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.w.Write(payload); err != nil {
			return err
		}
	}
	c.seq++
	c.frames++
	if flags&FlagEnd != 0 {
		c.ended = true
	}
	return nil
}

// End transmits the empty end-of-stream frame.
func (c *Client) End() error {
	return c.sendPayload(nil, FlagEnd)
}

// Abort closes the underlying connection (when the client owns one)
// without sending an End frame — the teardown for a connection already
// known broken, where an End would block on a dead socket and a
// successful one would falsely mark the stream cleanly ended.
func (c *Client) Abort() error {
	c.ended = true
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// Close sends the End frame (if not already sent) and closes the
// underlying connection when the client owns one.
func (c *Client) Close() error {
	var errEnd error
	if !c.ended {
		errEnd = c.End()
	}
	if c.closer != nil {
		if err := c.closer.Close(); err != nil {
			return err
		}
	}
	return errEnd
}
