package wire

import (
	"fmt"
	"hash/crc32"
	"io"
	"net"

	"rfdump/internal/iq"
)

// DefaultFrameSamples is the default transmit frame payload: 4096
// samples (512 us of air at 8 Msps, 32 KiB on the wire) — large enough
// to amortize the 40-byte header, small enough that -realtime pacing
// stays smooth.
const DefaultFrameSamples = 4096

// Client transmits one IQ stream as wire frames. It is the front-end
// side of the protocol: a USRP bridge, or rfgen -stream exercising the
// daemon without hardware. Not safe for concurrent use; one stream, one
// goroutine.
type Client struct {
	w      io.Writer
	closer io.Closer
	meta   StreamMeta
	seq    uint32
	frames int64
	sent   int64
	hdr    [HeaderSize]byte
	buf    []byte // payload scratch, reused across frames
	frame  int    // samples per frame for SendSamples
	ended  bool
}

// NewClient wraps w as a frame transmitter for the given stream.
func NewClient(w io.Writer, meta StreamMeta) *Client {
	if meta.Rate <= 0 {
		meta.Rate = iq.DefaultSampleRate
	}
	return &Client{w: w, meta: meta, frame: DefaultFrameSamples}
}

// Dial connects to a wire server and returns a transmitter; Close sends
// the End frame and closes the connection.
func Dial(addr string, meta StreamMeta) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, meta)
	c.closer = conn
	return c, nil
}

// SetFrameSamples sets the per-frame payload SendSamples splits into.
func (c *Client) SetFrameSamples(n int) {
	if n <= 0 || n > MaxFrameSamples {
		n = DefaultFrameSamples
	}
	c.frame = n
}

// FrameSamples returns the per-frame payload SendSamples splits into.
func (c *Client) FrameSamples() int { return c.frame }

// Meta returns the stream metadata stamped on every frame.
func (c *Client) Meta() StreamMeta { return c.meta }

// FramesSent returns the number of frames transmitted (End included).
func (c *Client) FramesSent() int64 { return c.frames }

// SamplesSent returns the number of payload samples transmitted.
func (c *Client) SamplesSent() int64 { return c.sent }

// SendFrame transmits one frame carrying exactly the given samples
// (at most MaxFrameSamples). The encode scratch is reused, so steady
// state allocates nothing.
func (c *Client) SendFrame(samples iq.Samples) error {
	return c.send(samples, 0)
}

// SendSamples transmits a sample run as a sequence of frames of the
// configured frame size.
func (c *Client) SendSamples(samples iq.Samples) error {
	for len(samples) > 0 {
		n := c.frame
		if n > len(samples) {
			n = len(samples)
		}
		if err := c.send(samples[:n], 0); err != nil {
			return err
		}
		samples = samples[n:]
	}
	return nil
}

func (c *Client) send(samples iq.Samples, flags uint16) error {
	if c.ended {
		return fmt.Errorf("wire: send after End frame")
	}
	if len(samples) > MaxFrameSamples {
		return fmt.Errorf("wire: frame of %d samples exceeds max %d", len(samples), MaxFrameSamples)
	}
	need := len(samples) * 8
	if cap(c.buf) < need {
		c.buf = make([]byte, need)
	}
	buf := c.buf[:need]
	putSamples(buf, samples)
	h := FrameHeader{
		Version:  Version,
		Flags:    flags,
		Stream:   c.meta.StreamID,
		Seq:      c.seq,
		Rate:     uint32(c.meta.Rate),
		CenterHz: c.meta.CenterHz,
		Count:    uint32(len(samples)),
	}
	if need > 0 {
		h.PayloadCRC = crc32.ChecksumIEEE(buf)
	}
	encodeHeader(c.hdr[:], h)
	if _, err := c.w.Write(c.hdr[:]); err != nil {
		return err
	}
	if need > 0 {
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
	}
	c.seq++
	c.frames++
	c.sent += int64(len(samples))
	if flags&FlagEnd != 0 {
		c.ended = true
	}
	return nil
}

// End transmits the empty end-of-stream frame.
func (c *Client) End() error {
	return c.send(nil, FlagEnd)
}

// Close sends the End frame (if not already sent) and closes the
// underlying connection when the client owns one.
func (c *Client) Close() error {
	var errEnd error
	if !c.ended {
		errEnd = c.End()
	}
	if c.closer != nil {
		if err := c.closer.Close(); err != nil {
			return err
		}
	}
	return errEnd
}
