package wire

import (
	"bytes"
	"testing"

	"rfdump/internal/iq"
)

// BenchmarkDecoderReadBlock measures the frame → block fill loop the
// ingest path runs in steady state: decoding chunk-sized pooled-block
// fills out of 4096-sample frames. The regression target is 0 allocs/op.
func BenchmarkDecoderReadBlock(b *testing.B) {
	var stream bytes.Buffer
	c := NewClient(&stream, StreamMeta{StreamID: 1, Rate: 8_000_000})
	if err := c.SendSamples(make(iq.Samples, 4096*64)); err != nil {
		b.Fatal(err)
	}
	d := NewDecoder(&loopReader{data: stream.Bytes()})
	dst := make(iq.Samples, iq.ChunkSamples)
	// Warm the payload scratch.
	for i := 0; i < 64; i++ {
		if _, err := d.ReadBlock(dst); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(dst) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadBlock(dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientSendFrame measures the transmit-side encode path.
func BenchmarkClientSendFrame(b *testing.B) {
	c := NewClient(discard{}, StreamMeta{StreamID: 1, Rate: 8_000_000})
	frame := make(iq.Samples, 4096)
	if err := c.SendFrame(frame); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
