// Package wire is the IQ ingest wire protocol: the framing that moves
// complex64 sample blocks from a radio front end (or rfgen -stream) to a
// monitoring daemon over TCP. The paper's testbed pipes the USRP into
// the analysis host over a bus; a networked RFDump — "tcpdump for the
// wireless ether" running as a service — needs the equivalent over a
// socket, and it has the same constraint the local pipeline has: at
// 8 Msps a per-frame allocation is a per-frame GC obligation, so the
// receive path decodes straight into caller-provided (pooled) sample
// buffers and reuses its byte scratch across frames.
//
// Frame layout (little-endian, 40-byte header):
//
//	 0  magic   [4]byte "RFW1"
//	 4  version uint16  = 1
//	 6  flags   uint16  bit 0: end of stream
//	 8  stream  uint32  transmitter-chosen stream id
//	12  seq     uint32  per-stream frame sequence number
//	16  rate    uint32  sample rate in Hz
//	20  center  uint64  center frequency in Hz
//	28  count   uint32  payload length in complex64 samples
//	32  pcrc    uint32  CRC-32 (IEEE) of the payload bytes (0 if empty)
//	36  hcrc    uint32  CRC-32 (IEEE) of header bytes [0, 36)
//	40  payload count × (float32 I, float32 Q)
//
// The two CRCs split failure handling: a bad header CRC (or magic, or
// version, or an absurd count) means framing is lost, and the decoder
// resynchronizes by sliding one byte at a time until a valid header
// parses — a corrupted frame skips forward instead of killing the
// stream. A bad payload CRC with a good header means framing is intact
// and only the samples are damaged, so just that frame is dropped. Both
// paths are counted, never fatal.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"rfdump/internal/iq"
)

// Magic identifies wire frames ("RFW1": RFdump Wire, version family 1).
var Magic = [4]byte{'R', 'F', 'W', '1'}

const (
	// Version is the current frame format version.
	Version = 1
	// HeaderSize is the fixed frame header size in bytes.
	HeaderSize = 40
	// MaxFrameSamples bounds the per-frame payload (8 MiB of samples) so
	// a corrupted or hostile count field cannot demand an unbounded
	// buffer.
	MaxFrameSamples = 1 << 20
	// FlagEnd marks the transmitter's clean end of stream. An End frame
	// usually carries no payload.
	FlagEnd = 1 << 0
	// FlagHeartbeat marks an empty keep-alive frame. Heartbeats carry no
	// samples; they refresh the receiver's liveness clock (and its read
	// deadline) so both ends can tell a silent-but-alive transmitter
	// from a half-open connection.
	FlagHeartbeat = 1 << 1
	// FlagResume marks a control frame whose payload is a ResumeInfo
	// record: a reconnecting transmitter's ledger of everything it sent
	// (and shed) before this connection, so the receiver can stitch the
	// stream onto its predecessor and account the gap instead of
	// silently losing it.
	FlagResume = 1 << 2
)

// StreamMeta is the per-stream metadata carried by every frame header —
// what a receiver needs to interpret the samples.
type StreamMeta struct {
	// StreamID is the transmitter-chosen stream identifier.
	StreamID uint32 `json:"stream_id"`
	// Rate is the sample rate in Hz.
	Rate int `json:"rate_hz"`
	// CenterHz is the tuned center frequency in Hz (0 if unknown).
	CenterHz uint64 `json:"center_hz"`
}

// FrameHeader is one parsed frame header.
type FrameHeader struct {
	Version  uint16
	Flags    uint16
	Stream   uint32
	Seq      uint32
	Rate     uint32
	CenterHz uint64
	// Count is the payload length in samples.
	Count uint32
	// PayloadCRC is the IEEE CRC-32 of the payload bytes.
	PayloadCRC uint32
}

// End reports whether the frame carries the end-of-stream flag.
func (h FrameHeader) End() bool { return h.Flags&FlagEnd != 0 }

// encodeHeader writes h into dst (at least HeaderSize bytes), computing
// the header CRC over the first 36 bytes.
func encodeHeader(dst []byte, h FrameHeader) {
	copy(dst[0:4], Magic[:])
	binary.LittleEndian.PutUint16(dst[4:6], h.Version)
	binary.LittleEndian.PutUint16(dst[6:8], h.Flags)
	binary.LittleEndian.PutUint32(dst[8:12], h.Stream)
	binary.LittleEndian.PutUint32(dst[12:16], h.Seq)
	binary.LittleEndian.PutUint32(dst[16:20], h.Rate)
	binary.LittleEndian.PutUint64(dst[20:28], h.CenterHz)
	binary.LittleEndian.PutUint32(dst[28:32], h.Count)
	binary.LittleEndian.PutUint32(dst[32:36], h.PayloadCRC)
	binary.LittleEndian.PutUint32(dst[36:40], crc32.ChecksumIEEE(dst[0:36]))
}

// ParseHeader validates and decodes one frame header from buf (at least
// HeaderSize bytes). It rejects, in order: bad magic, a header CRC
// mismatch (covers every later field), an unsupported version, and a
// count beyond MaxFrameSamples.
func ParseHeader(buf []byte) (FrameHeader, error) {
	if len(buf) < HeaderSize {
		return FrameHeader{}, fmt.Errorf("wire: short header: %d bytes", len(buf))
	}
	if buf[0] != Magic[0] || buf[1] != Magic[1] || buf[2] != Magic[2] || buf[3] != Magic[3] {
		return FrameHeader{}, errBadMagic
	}
	if crc32.ChecksumIEEE(buf[0:36]) != binary.LittleEndian.Uint32(buf[36:40]) {
		return FrameHeader{}, errBadHeaderCRC
	}
	h := FrameHeader{
		Version:    binary.LittleEndian.Uint16(buf[4:6]),
		Flags:      binary.LittleEndian.Uint16(buf[6:8]),
		Stream:     binary.LittleEndian.Uint32(buf[8:12]),
		Seq:        binary.LittleEndian.Uint32(buf[12:16]),
		Rate:       binary.LittleEndian.Uint32(buf[16:20]),
		CenterHz:   binary.LittleEndian.Uint64(buf[20:28]),
		Count:      binary.LittleEndian.Uint32(buf[28:32]),
		PayloadCRC: binary.LittleEndian.Uint32(buf[32:36]),
	}
	if h.Version != Version {
		return FrameHeader{}, fmt.Errorf("wire: unsupported version %d", h.Version)
	}
	if h.Count > MaxFrameSamples {
		return FrameHeader{}, fmt.Errorf("wire: frame count %d exceeds max %d", h.Count, MaxFrameSamples)
	}
	return h, nil
}

var (
	errBadMagic     = fmt.Errorf("wire: bad magic")
	errBadHeaderCRC = fmt.Errorf("wire: header CRC mismatch")
)

// ResumeInfo is the payload of a FlagResume control frame: the
// transmit-side ledger a reconnecting client presents so the receiver
// can account exactly what the outage cost. Sent* covers every frame
// successfully written to previous connections (data and control);
// Dropped* covers payload the client shed while disconnected. The
// receiver's gap is (SentSamples − samples it actually received) +
// DroppedSamples — in-flight loss plus client-side shedding — so
// delivered + accounted gaps always equals transmitted.
type ResumeInfo struct {
	// Epoch numbers the connection: 0 is the first, each reconnect
	// increments it.
	Epoch uint32 `json:"epoch"`
	// SentFrames / SentSamples count everything written to the socket
	// across all previous epochs (frames include control frames;
	// samples are data payload only).
	SentFrames  uint64 `json:"sent_frames"`
	SentSamples uint64 `json:"sent_samples"`
	// DroppedFrames / DroppedSamples count payload the client shed
	// while disconnected (its MaxDown policy) — transmitted on no wire,
	// but part of the stream's timeline and so part of the gap.
	DroppedFrames  uint64 `json:"dropped_frames"`
	DroppedSamples uint64 `json:"dropped_samples"`
}

// Offset returns the stream-timeline position of the first sample this
// epoch will carry: everything sent plus everything shed before it.
func (r ResumeInfo) Offset() int64 {
	return int64(r.SentSamples + r.DroppedSamples)
}

// ResumePayloadBytes is the encoded ResumeInfo size. It is a multiple
// of the 8-byte sample unit so the frame header's sample count stays
// meaningful.
const ResumePayloadBytes = 40

func encodeResume(dst []byte, r ResumeInfo) {
	binary.LittleEndian.PutUint32(dst[0:4], r.Epoch)
	binary.LittleEndian.PutUint32(dst[4:8], 0)
	binary.LittleEndian.PutUint64(dst[8:16], r.SentFrames)
	binary.LittleEndian.PutUint64(dst[16:24], r.SentSamples)
	binary.LittleEndian.PutUint64(dst[24:32], r.DroppedFrames)
	binary.LittleEndian.PutUint64(dst[32:40], r.DroppedSamples)
}

func parseResume(src []byte) (ResumeInfo, error) {
	if len(src) != ResumePayloadBytes {
		return ResumeInfo{}, fmt.Errorf("wire: resume payload is %d bytes, want %d", len(src), ResumePayloadBytes)
	}
	return ResumeInfo{
		Epoch:          binary.LittleEndian.Uint32(src[0:4]),
		SentFrames:     binary.LittleEndian.Uint64(src[8:16]),
		SentSamples:    binary.LittleEndian.Uint64(src[16:24]),
		DroppedFrames:  binary.LittleEndian.Uint64(src[24:32]),
		DroppedSamples: binary.LittleEndian.Uint64(src[32:40]),
	}, nil
}

// putSamples encodes src as little-endian float32 I/Q pairs into dst
// (len(src)*8 bytes).
func putSamples(dst []byte, src iq.Samples) {
	for i, s := range src {
		binary.LittleEndian.PutUint32(dst[i*8:], math.Float32bits(real(s)))
		binary.LittleEndian.PutUint32(dst[i*8+4:], math.Float32bits(imag(s)))
	}
}

// getSamples decodes len(dst) samples from src (len(dst)*8 bytes).
func getSamples(dst iq.Samples, src []byte) {
	for i := range dst {
		re := math.Float32frombits(binary.LittleEndian.Uint32(src[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(src[i*8+4:]))
		dst[i] = complex(re, im)
	}
}
