package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rfdump/internal/iq"
)

// FuzzDecoder feeds arbitrary bytes to the frame decoder: whatever the
// wire carries, the decoder must terminate without panicking, never
// deliver more samples than the input could encode, and account every
// byte it skipped.
func FuzzDecoder(f *testing.F) {
	// Seeds: a clean two-frame stream, a corrupted header, a corrupted
	// payload, a bare End frame, and framing garbage.
	var clean bytes.Buffer
	c := NewClient(&clean, StreamMeta{StreamID: 5, Rate: 8_000_000, CenterHz: 2_412_000_000})
	c.SetFrameSamples(32)
	_ = c.SendSamples(make(iq.Samples, 64))
	_ = c.Close()
	f.Add(clean.Bytes())

	corruptHdr := append([]byte(nil), clean.Bytes()...)
	corruptHdr[HeaderSize+32*8] ^= 0xFF
	f.Add(corruptHdr)

	corruptPay := append([]byte(nil), clean.Bytes()...)
	corruptPay[HeaderSize+5] ^= 0x10
	f.Add(corruptPay)

	var end bytes.Buffer
	ec := NewClient(&end, StreamMeta{StreamID: 1, Rate: 1})
	_ = ec.End()
	f.Add(end.Bytes())

	f.Add([]byte("RFW1 not actually a frame RFW1RFW1"))
	f.Add(bytes.Repeat([]byte{0x00}, 200))

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		dst := make(iq.Samples, 96)
		var total int64
		for {
			n, err := d.ReadBlock(dst)
			if n < 0 || n > len(dst) {
				t.Fatalf("ReadBlock returned %d for a %d-sample buffer", n, len(dst))
			}
			total += int64(n)
			if err != nil {
				if !errors.Is(err, io.EOF) {
					t.Fatalf("decoder returned non-EOF transport error from a byte reader: %v", err)
				}
				break
			}
		}
		// The input bounds the output: every delivered sample consumed
		// at least 8 payload bytes plus its share of a header.
		if total*8 > int64(len(data)) {
			t.Fatalf("decoded %d samples from %d input bytes", total, len(data))
		}
		counts := d.Counts()
		if counts.Samples != total {
			t.Fatalf("counts.Samples %d, delivered %d", counts.Samples, total)
		}
		if counts.ResyncBytes > int64(len(data)) {
			t.Fatalf("resync bytes %d exceed input %d", counts.ResyncBytes, len(data))
		}
	})
}

// FuzzParseHeader exercises header validation in isolation: it must
// never panic and never accept a header whose CRC does not match.
func FuzzParseHeader(f *testing.F) {
	var good [HeaderSize]byte
	encodeHeader(good[:], FrameHeader{Version: Version, Stream: 1, Seq: 2, Rate: 8_000_000, Count: 16})
	f.Add(good[:])
	f.Add(make([]byte, HeaderSize))
	f.Add([]byte("RFW1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data)
		if err != nil {
			return
		}
		if h.Version != Version {
			t.Fatalf("accepted version %d", h.Version)
		}
		if h.Count > MaxFrameSamples {
			t.Fatalf("accepted count %d", h.Count)
		}
		// Round trip: re-encoding an accepted header reproduces the
		// input bytes exactly (the format has no don't-care bits).
		var enc [HeaderSize]byte
		encodeHeader(enc[:], h)
		if !bytes.Equal(enc[:], data[:HeaderSize]) {
			t.Fatalf("accepted header does not round-trip:\n in  %x\n out %x", data[:HeaderSize], enc)
		}
	})
}
