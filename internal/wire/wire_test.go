package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"rfdump/internal/iq"
)

// ramp returns n samples with recognizable values for content checks.
func ramp(n int, base float32) iq.Samples {
	s := make(iq.Samples, n)
	for i := range s {
		s[i] = complex(base+float32(i), -float32(i))
	}
	return s
}

// encodeStream renders a full client stream (frames + End) to bytes.
func encodeStream(t *testing.T, meta StreamMeta, frameSamples int, samples iq.Samples) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewClient(&buf, meta)
	c.SetFrameSamples(frameSamples)
	if err := c.SendSamples(samples); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads the whole stream through ReadBlock in blockSize chunks.
func drain(t *testing.T, d *Decoder, blockSize int) iq.Samples {
	t.Helper()
	var out iq.Samples
	buf := make(iq.Samples, blockSize)
	for {
		n, err := d.ReadBlock(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("ReadBlock: %v", err)
			}
			return out
		}
	}
}

func TestRoundTrip(t *testing.T) {
	meta := StreamMeta{StreamID: 7, Rate: 8_000_000, CenterHz: 2_412_000_000}
	want := ramp(10_000, 1)
	raw := encodeStream(t, meta, 1024, want)

	d := NewDecoder(bytes.NewReader(raw))
	got, err := d.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta %+v, want %+v", got, meta)
	}
	out := drain(t, d, 200)
	if len(out) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(want))
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, out[i], want[i])
		}
	}
	c := d.Counts()
	if !c.CleanEnd {
		t.Error("clean end not recorded")
	}
	if c.Samples != int64(len(want)) || c.ResyncBytes != 0 || c.BadFrames != 0 || c.SeqGaps != 0 {
		t.Errorf("counts %+v", c)
	}
}

// TestChunkingIndependentOfFraming is the property the loopback
// acceptance test relies on: a stream decodes into identical blocks
// however the transmitter framed it.
func TestChunkingIndependentOfFraming(t *testing.T) {
	want := ramp(5_000, 3)
	for _, frame := range []int{64, 200, 333, 4096} {
		raw := encodeStream(t, StreamMeta{StreamID: 1, Rate: 8_000_000}, frame, want)
		d := NewDecoder(bytes.NewReader(raw))
		buf := make(iq.Samples, 200)
		pos := 0
		for {
			n, err := d.ReadBlock(buf)
			if n > 0 && pos+n < len(want) && n != len(buf) {
				t.Fatalf("frame %d: short fill %d mid-stream at %d", frame, n, pos)
			}
			for i := 0; i < n; i++ {
				if buf[i] != want[pos+i] {
					t.Fatalf("frame %d: sample %d mismatch", frame, pos+i)
				}
			}
			pos += n
			if err != nil {
				break
			}
		}
		if pos != len(want) {
			t.Fatalf("frame %d: got %d samples, want %d", frame, pos, len(want))
		}
	}
}

func TestResyncAfterCorruptHeader(t *testing.T) {
	want := ramp(3*1024, 5)
	raw := encodeStream(t, StreamMeta{StreamID: 2, Rate: 8_000_000}, 1024, want)

	// Corrupt the magic of the second frame: its header fails to parse,
	// the decoder slides forward over the damaged frame and locks onto
	// the third.
	secondHdr := HeaderSize + 1024*8
	raw[secondHdr] ^= 0xFF

	d := NewDecoder(bytes.NewReader(raw))
	out := drain(t, d, 200)
	if len(out) != 2*1024 {
		t.Fatalf("decoded %d samples, want %d (first+third frame)", len(out), 2*1024)
	}
	// Frame 1 content then frame 3 content.
	for i := 0; i < 1024; i++ {
		if out[i] != want[i] {
			t.Fatalf("frame1 sample %d corrupted", i)
		}
		if out[1024+i] != want[2048+i] {
			t.Fatalf("frame3 sample %d corrupted", i)
		}
	}
	c := d.Counts()
	if c.ResyncBytes == 0 {
		t.Error("resync bytes not counted")
	}
	if c.SeqGaps != 1 {
		t.Errorf("seq gaps %d, want 1", c.SeqGaps)
	}
	if !c.CleanEnd {
		t.Error("stream should still end cleanly")
	}
}

func TestPayloadCRCDropsFrameOnly(t *testing.T) {
	want := ramp(3*1024, 9)
	raw := encodeStream(t, StreamMeta{StreamID: 3, Rate: 8_000_000}, 1024, want)

	// Corrupt one payload byte of the second frame: header still parses,
	// payload CRC fails, only that frame is dropped.
	raw[2*HeaderSize+1024*8+100] ^= 0x01

	d := NewDecoder(bytes.NewReader(raw))
	out := drain(t, d, 200)
	if len(out) != 2*1024 {
		t.Fatalf("decoded %d samples, want %d", len(out), 2*1024)
	}
	c := d.Counts()
	if c.BadFrames != 1 {
		t.Errorf("bad frames %d, want 1", c.BadFrames)
	}
	if c.ResyncBytes != 0 {
		t.Errorf("resync bytes %d, want 0 (framing never lost)", c.ResyncBytes)
	}
}

func TestDirtyEnd(t *testing.T) {
	want := ramp(2048, 1)
	raw := encodeStream(t, StreamMeta{StreamID: 4, Rate: 8_000_000}, 1024, want)
	// Cut the stream mid-second-frame: no End frame, truncated payload.
	raw = raw[:HeaderSize+1024*8+HeaderSize+37]

	d := NewDecoder(bytes.NewReader(raw))
	out := drain(t, d, 200)
	if len(out) != 1024 {
		t.Fatalf("decoded %d samples, want 1024", len(out))
	}
	if c := d.Counts(); c.CleanEnd {
		t.Error("truncated stream reported a clean end")
	}
}

func TestServerLoopback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	want := ramp(8_192, 2)

	type result struct {
		meta StreamMeta
		got  iq.Samples
		err  error
	}
	done := make(chan result, 1)
	srv := NewServer(func(c *Conn) {
		var r result
		r.meta, r.err = c.Meta()
		if r.err == nil {
			buf := make(iq.Samples, 200)
			for {
				n, err := c.ReadBlock(buf)
				r.got = append(r.got, buf[:n]...)
				if err != nil {
					if !errors.Is(err, io.EOF) {
						r.err = err
					}
					break
				}
			}
		}
		done <- r
	})
	go srv.Serve(ln)
	defer srv.Close()

	meta := StreamMeta{StreamID: 11, Rate: 8_000_000, CenterHz: 2_437_000_000}
	c, err := Dial(ln.Addr().String(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendSamples(want); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.meta != meta {
		t.Errorf("meta %+v, want %+v", r.meta, meta)
	}
	if len(r.got) != len(want) {
		t.Fatalf("received %d samples, want %d", len(r.got), len(want))
	}
	srv.Drain()
	srv.Wait()
}

// TestDecoderSteadyStateAllocs is the acceptance gate: the frame → block
// fill loop allocates nothing once the scratch buffers are warm.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	// Endless stream: frames only, no End, replayed by loopReader.
	var stream bytes.Buffer
	c := NewClient(&stream, StreamMeta{StreamID: 1, Rate: 8_000_000})
	if err := c.SendSamples(ramp(4096*64, 1)); err != nil {
		t.Fatal(err)
	}
	raw := stream.Bytes()

	dst := make(iq.Samples, iq.ChunkSamples)
	lr := &loopReader{data: raw}
	d := NewDecoder(lr)
	// Warm-up: first frames grow the payload scratch.
	for i := 0; i < 100; i++ {
		if _, err := d.ReadBlock(dst); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := d.ReadBlock(dst); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.01 {
		t.Errorf("steady-state ReadBlock allocates %.3f allocs/op, want 0", avg)
	}
}

// loopReader replays its data forever (End frames stripped by the
// caller's choice of data); it lets alloc/throughput tests run an
// endless stream with no per-iteration setup.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off >= len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}
