package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

import "rfdump/internal/iq"

// Conn is one accepted ingest connection: the decoder over the socket
// plus the transport handles a daemon needs (identity, liveness,
// nudging a blocked read during drain). It implements the pipeline's
// BlockReader contract through the embedded decoder.
type Conn struct {
	c   net.Conn
	dec *Decoder
	srv *Server

	// idle is the per-connection read deadline: a connection that
	// delivers no frame (data or heartbeat) for this long fails its
	// read. 0 disables. The deadline is refreshed on every valid frame
	// (the decoder's frame hook), so a heartbeating-but-quiet
	// transmitter stays alive while a half-open socket times out.
	idle time.Duration

	// dlMu serializes deadline arming against Nudge so a drain's
	// expired deadline can never be overwritten by a refresh.
	dlMu        sync.Mutex
	nudged      bool
	nextRefresh time.Time

	lastFrame atomic.Int64 // unix nanos of the last valid frame
}

// Meta returns the stream metadata from the connection's first frame.
func (c *Conn) Meta() (StreamMeta, error) { return c.dec.Meta() }

// Resume returns the resume ledger if this connection opened with a
// FlagResume handshake (call after Meta).
func (c *Conn) Resume() (ResumeInfo, bool) { return c.dec.Resume() }

// ReadBlock fills dst from the connection's frame stream (the
// pipeline's BlockReader contract, so a session pulls pooled blocks
// straight off the socket).
func (c *Conn) ReadBlock(dst iq.Samples) (int, error) {
	c.armDeadline()
	return c.dec.ReadBlock(dst)
}

// Counts returns the decoder accounting (safe from other goroutines).
func (c *Conn) Counts() Counts { return c.dec.Counts() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// LastFrame returns the arrival time of the connection's most recent
// valid frame (zero before the first). Heartbeats count: this is the
// liveness clock /healthz reads.
func (c *Conn) LastFrame() time.Time {
	ns := c.lastFrame.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// onFrame is the decoder's frame hook: record liveness and keep the
// read deadline ahead of the idle window while frames flow. It runs on
// the reader goroutine between frames.
func (c *Conn) onFrame(FrameHeader) {
	now := time.Now()
	c.lastFrame.Store(now.UnixNano())
	if c.idle <= 0 {
		return
	}
	c.dlMu.Lock()
	if !c.nudged && now.After(c.nextRefresh) {
		_ = c.c.SetReadDeadline(now.Add(c.idle))
		// Refreshing at quarter-idle granularity keeps the deadline
		// syscall off the per-frame path at high frame rates.
		c.nextRefresh = now.Add(c.idle / 4)
	}
	c.dlMu.Unlock()
}

// armDeadline prepares the read deadline for a blocking ReadBlock. A
// nudge is one-shot: if the server is draining the deadline stays
// expired (the read must fail so the session can flush), but a nudged
// connection that is deliberately kept gets its deadline restored and
// the decoder's timeout error cleared — it must not fail every
// subsequent read forever.
func (c *Conn) armDeadline() {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	if c.nudged {
		if c.srv != nil && c.srv.stopping.Load() {
			return // drain in progress: stay expired
		}
		c.nudged = false
		c.dec.ClearTimeout()
	}
	if c.idle > 0 {
		now := time.Now()
		_ = c.c.SetReadDeadline(now.Add(c.idle))
		c.nextRefresh = now.Add(c.idle / 4)
	} else {
		_ = c.c.SetReadDeadline(time.Time{})
	}
}

// Nudge unblocks a pending read by expiring the read deadline. A drain
// uses it to pop sessions out of blocking socket reads; the decoder
// surfaces the timeout as a transport error which the daemon's stop
// wrapper converts to a clean EOF.
func (c *Conn) Nudge() {
	c.dlMu.Lock()
	c.nudged = true
	_ = c.c.SetReadDeadline(time.Unix(1, 0))
	c.dlMu.Unlock()
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// Handler consumes one ingest connection; it runs on the connection's
// own goroutine and the connection is closed when it returns.
type Handler func(*Conn)

// Server accepts wire connections and hands each to the handler. It
// tracks live connections so a daemon can drain them (Nudge) or tear
// them down (Close) as a group.
type Server struct {
	handler Handler

	// idle is applied to every accepted connection (see Conn.idle).
	idle time.Duration

	// stopping is the lock-free drain signal Conn.armDeadline consults
	// (it cannot take s.mu: Drain nudges connections while holding it).
	stopping atomic.Bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer returns a server dispatching connections to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[*Conn]struct{})}
}

// SetIdleTimeout sets the per-connection idle read deadline applied to
// connections accepted from now on (0 disables). A connection that
// delivers no frame within the window fails its read — the supervision
// that reaps half-open ingest connections.
func (s *Server) SetIdleTimeout(d time.Duration) {
	s.mu.Lock()
	s.idle = d
	s.mu.Unlock()
}

// Serve accepts connections from ln until the listener is closed. It
// blocks; run it on its own goroutine. Handler goroutines may outlive
// Serve — Wait joins them.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		idle := s.idle
		s.mu.Unlock()
		conn := &Conn{c: c, dec: NewDecoder(c), srv: s, idle: idle}
		conn.dec.SetFrameHook(conn.onFrame)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handler(conn)
		}()
	}
}

// Drain stops accepting new connections and nudges every live one so
// blocked reads return; existing handlers keep running until their
// streams end. Wait joins them.
func (s *Server) Drain() {
	s.stopping.Store(true)
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Nudge()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Close stops accepting and closes every live connection (handlers see
// transport errors and return).
func (s *Server) Close() {
	s.stopping.Store(true)
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Wait blocks until every handler goroutine has returned.
func (s *Server) Wait() { s.wg.Wait() }
