package wire

import (
	"net"
	"sync"
	"time"

	"rfdump/internal/iq"
)

// Conn is one accepted ingest connection: the decoder over the socket
// plus the transport handles a daemon needs (identity, nudging a blocked
// read during drain). It implements the pipeline's BlockReader contract
// through the embedded decoder.
type Conn struct {
	c   net.Conn
	dec *Decoder
}

// Meta returns the stream metadata from the connection's first frame.
func (c *Conn) Meta() (StreamMeta, error) { return c.dec.Meta() }

// ReadBlock fills dst from the connection's frame stream (the
// pipeline's BlockReader contract, so a session pulls pooled blocks
// straight off the socket).
func (c *Conn) ReadBlock(dst iq.Samples) (int, error) { return c.dec.ReadBlock(dst) }

// Counts returns the decoder accounting (safe from other goroutines).
func (c *Conn) Counts() Counts { return c.dec.Counts() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// Nudge unblocks a pending read by expiring the read deadline. A drain
// uses it to pop sessions out of blocking socket reads; the decoder
// surfaces the timeout as a transport error which the daemon's stop
// wrapper converts to a clean EOF.
func (c *Conn) Nudge() { _ = c.c.SetReadDeadline(time.Unix(1, 0)) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// Handler consumes one ingest connection; it runs on the connection's
// own goroutine and the connection is closed when it returns.
type Handler func(*Conn)

// Server accepts wire connections and hands each to the handler. It
// tracks live connections so a daemon can drain them (Nudge) or tear
// them down (Close) as a group.
type Server struct {
	handler Handler

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer returns a server dispatching connections to handler.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[*Conn]struct{})}
}

// Serve accepts connections from ln until the listener is closed. It
// blocks; run it on its own goroutine. Handler goroutines may outlive
// Serve — Wait joins them.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		conn := &Conn{c: c, dec: NewDecoder(c)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handler(conn)
		}()
	}
}

// Drain stops accepting new connections and nudges every live one so
// blocked reads return; existing handlers keep running until their
// streams end. Wait joins them.
func (s *Server) Drain() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Nudge()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Close stops accepting and closes every live connection (handlers see
// transport errors and return).
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Wait blocks until every handler goroutine has returned.
func (s *Server) Wait() { s.wg.Wait() }
