package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rfdump/internal/iq"
	"rfdump/internal/metrics"
)

// Reconnect policy defaults. Backoff starts fast (a daemon restart is
// the common case and costs only milliseconds) and caps low: an IQ
// transmitter buffering against a dead link measures downtime in
// samples, so probing every couple of seconds is cheap relative to
// what waiting costs.
const (
	DefaultReconnectDialTimeout  = 5 * time.Second
	DefaultReconnectWriteTimeout = 10 * time.Second
	DefaultMinBackoff            = 50 * time.Millisecond
	DefaultMaxBackoff            = 2 * time.Second
	DefaultBackoffJitter         = 0.25
)

// ReconnectConfig tunes a ReconnectClient. The zero value means:
// default timeouts and backoff, block forever while down (drop
// nothing), no heartbeats.
type ReconnectConfig struct {
	// DialTimeout caps each TCP connect attempt (≤0 takes
	// DefaultReconnectDialTimeout).
	DialTimeout time.Duration
	// WriteTimeout caps each frame write (0 disables, <0 takes
	// DefaultReconnectWriteTimeout).
	WriteTimeout time.Duration

	// MinBackoff/MaxBackoff bound the exponential redial backoff;
	// Jitter (0..1) randomizes each delay by ±Jitter so a fleet of
	// sensors does not redial in lockstep. Zero values take the
	// defaults above.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	Jitter     float64
	// Seed seeds the jitter PRNG (0 takes a fixed seed; determinism is
	// a feature in tests).
	Seed uint64

	// Heartbeat, when positive, starts a keep-alive goroutine that
	// sends an empty heartbeat frame whenever the connection has been
	// idle for the interval — and, while down, uses the tick to probe
	// one redial so an idle transmitter still recovers.
	Heartbeat time.Duration

	// MaxDown bounds how long a send blocks redialing before shedding
	// the frame instead (accounted in the resume ledger as dropped).
	// 0 blocks forever: nothing is shed, delivery waits for the link.
	MaxDown time.Duration

	// FrameSamples is the per-frame payload for SendSamples (0 takes
	// DefaultFrameSamples).
	FrameSamples int

	// Metrics, when set, receives wire/reconnects, wire/dial_failures,
	// wire/write_failures, wire/dropped_frames and wire/heartbeats_sent.
	Metrics *metrics.Registry
	// Logf, when set, receives one line per connectivity transition.
	Logf func(format string, args ...any)

	// DialFunc replaces the TCP dial (tests inject failures here).
	// The returned client must already carry its write timeout.
	DialFunc func(addr string, meta StreamMeta) (*Client, error)
}

// ReconnectStats is a snapshot of a ReconnectClient's life so far.
type ReconnectStats struct {
	// Connected reports a live connection; Epoch numbers it (0 is the
	// first connection, each reconnect increments it).
	Connected bool   `json:"connected"`
	Epoch     uint32 `json:"epoch"`
	// Reconnects counts successful re-establishments (first connect
	// excluded); DialFailures and WriteFailures count the errors that
	// drove them.
	Reconnects     int64 `json:"reconnects"`
	DialFailures   int64 `json:"dial_failures"`
	WriteFailures  int64 `json:"write_failures"`
	HeartbeatsSent int64 `json:"heartbeats_sent"`
	// SentFrames/SentSamples cover everything written across all
	// epochs (live connection included); Dropped* is payload shed
	// under the MaxDown policy.
	SentFrames     uint64 `json:"sent_frames"`
	SentSamples    uint64 `json:"sent_samples"`
	DroppedFrames  uint64 `json:"dropped_frames"`
	DroppedSamples uint64 `json:"dropped_samples"`
}

// ReconnectClient is a wire transmitter that survives the network: it
// wraps Client with bounded dials and writes, exponential-backoff
// redial, optional heartbeats, and the resume handshake that lets the
// receiving daemon stitch connections into one stream and account
// every sample the outage cost. Sends are serialized by an internal
// lock; one stream, any goroutine.
type ReconnectClient struct {
	addr string
	meta StreamMeta
	cfg  ReconnectConfig

	closed  atomic.Bool
	closeCh chan struct{}
	hbStop  sync.WaitGroup

	mu    sync.Mutex
	cur   *Client // nil while down
	conns uint32  // successful dials; epoch of cur is conns-1
	rng   uint64

	// Cumulative ledger over closed epochs (cur's counters are folded
	// in at teardown). These four are exactly what SendResume carries.
	cumFrames  uint64
	cumSamples uint64
	dropFrames uint64
	dropSamps  uint64

	downSince time.Time
	lastSend  time.Time
	ended     bool

	reconnects    int64
	dialFailures  int64
	writeFailures int64
	heartbeats    int64
}

// NewReconnectClient returns a client that will transmit the stream to
// addr, connecting lazily on first send. Close releases it.
func NewReconnectClient(addr string, meta StreamMeta, cfg ReconnectConfig) *ReconnectClient {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultReconnectDialTimeout
	}
	if cfg.WriteTimeout < 0 {
		cfg.WriteTimeout = DefaultReconnectWriteTimeout
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = DefaultMinBackoff
	}
	if cfg.MaxBackoff < cfg.MinBackoff {
		cfg.MaxBackoff = DefaultMaxBackoff
		if cfg.MaxBackoff < cfg.MinBackoff {
			cfg.MaxBackoff = cfg.MinBackoff
		}
	}
	if cfg.Jitter <= 0 || cfg.Jitter > 1 {
		cfg.Jitter = DefaultBackoffJitter
	}
	if cfg.FrameSamples <= 0 || cfg.FrameSamples > MaxFrameSamples {
		cfg.FrameSamples = DefaultFrameSamples
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	rc := &ReconnectClient{
		addr:      addr,
		meta:      meta,
		cfg:       cfg,
		closeCh:   make(chan struct{}),
		rng:       seed,
		downSince: time.Now(),
	}
	if cfg.Heartbeat > 0 {
		rc.hbStop.Add(1)
		go rc.heartbeatLoop()
	}
	return rc
}

// Meta returns the stream metadata stamped on every frame.
func (rc *ReconnectClient) Meta() StreamMeta { return rc.meta }

// FrameSamples returns the per-frame payload SendSamples splits into.
func (rc *ReconnectClient) FrameSamples() int { return rc.cfg.FrameSamples }

// Stats returns a snapshot of the client's ledger and failure counts.
func (rc *ReconnectClient) Stats() ReconnectStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	s := ReconnectStats{
		Connected:      rc.cur != nil,
		Reconnects:     rc.reconnects,
		DialFailures:   rc.dialFailures,
		WriteFailures:  rc.writeFailures,
		HeartbeatsSent: rc.heartbeats,
		SentFrames:     rc.cumFrames,
		SentSamples:    rc.cumSamples,
		DroppedFrames:  rc.dropFrames,
		DroppedSamples: rc.dropSamps,
	}
	if rc.conns > 0 {
		s.Epoch = rc.conns - 1
	}
	if rc.cur != nil {
		s.SentFrames += uint64(rc.cur.FramesSent())
		s.SentSamples += uint64(rc.cur.SamplesSent())
	}
	return s
}

// SendFrame transmits one frame, redialing (with the resume handshake)
// through any number of connection failures. It blocks while the link
// is down unless MaxDown elapses, in which case the frame is shed and
// accounted as dropped — never silently lost.
func (rc *ReconnectClient) SendFrame(samples iq.Samples) error {
	if len(samples) > MaxFrameSamples {
		return fmt.Errorf("wire: frame of %d samples exceeds max %d", len(samples), MaxFrameSamples)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.ended {
		return fmt.Errorf("wire: send after End frame")
	}
	for {
		if err := rc.ensureConnLocked(); err != nil {
			if err == errStillDown {
				rc.dropFrames++
				rc.dropSamps += uint64(len(samples))
				rc.cfg.Metrics.Counter("wire/dropped_frames").Add(1)
				return nil
			}
			return err
		}
		if err := rc.cur.SendFrame(samples); err != nil {
			rc.writeFailed(err)
			continue
		}
		rc.lastSend = time.Now()
		return nil
	}
}

// SendSamples transmits a sample run as frames of the configured size,
// with the same redial/shed behavior as SendFrame.
func (rc *ReconnectClient) SendSamples(samples iq.Samples) error {
	for len(samples) > 0 {
		n := rc.cfg.FrameSamples
		if n > len(samples) {
			n = len(samples)
		}
		if err := rc.SendFrame(samples[:n]); err != nil {
			return err
		}
		samples = samples[n:]
	}
	return nil
}

// Heartbeat sends one keep-alive frame on the live connection (no-op
// while down — a heartbeat is proof of life, not worth a redial storm
// on its own; the heartbeat loop probes redials separately).
func (rc *ReconnectClient) Heartbeat() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.heartbeatLocked()
}

func (rc *ReconnectClient) heartbeatLocked() error {
	if rc.cur == nil || rc.ended {
		return nil
	}
	if err := rc.cur.Heartbeat(); err != nil {
		rc.writeFailed(err)
		return err
	}
	rc.heartbeats++
	rc.cfg.Metrics.Counter("wire/heartbeats_sent").Add(1)
	rc.lastSend = time.Now()
	return nil
}

// End transmits the end-of-stream frame on the live connection. Unlike
// data sends it does not redial: if the link is down at the end of a
// capture there is no connection worth resurrecting just to say
// goodbye — the receiver's accounting treats a vanished stream as a
// dirty end, which is the truth.
func (rc *ReconnectClient) End() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.ended {
		return nil
	}
	rc.ended = true
	if rc.cur == nil {
		return nil
	}
	if err := rc.cur.End(); err != nil {
		rc.teardownLocked()
		return err
	}
	return nil
}

// Close ends the stream (best effort), stops the heartbeat loop, and
// closes any live connection.
func (rc *ReconnectClient) Close() error {
	if !rc.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(rc.closeCh)
	rc.hbStop.Wait()
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var err error
	if rc.cur != nil {
		c := rc.cur
		rc.cur = nil
		if rc.ended {
			err = c.Abort()
		} else {
			err = c.Close() // sends End, then closes
		}
		// Fold after the close so the End frame is counted.
		rc.cumFrames += uint64(c.FramesSent())
		rc.cumSamples += uint64(c.SamplesSent())
	}
	rc.ended = true
	return err
}

var errStillDown = fmt.Errorf("wire: link down beyond MaxDown")

// writeFailed tears down the current connection after a send error and
// records the failure. Caller holds mu.
func (rc *ReconnectClient) writeFailed(err error) {
	rc.writeFailures++
	rc.cfg.Metrics.Counter("wire/write_failures").Add(1)
	rc.logf("wire: write failed on epoch %d: %v", rc.conns-1, err)
	rc.teardownLocked()
}

// teardownLocked folds the live connection's counters into the
// cumulative ledger and discards it. Caller holds mu.
func (rc *ReconnectClient) teardownLocked() {
	if rc.cur == nil {
		return
	}
	rc.cumFrames += uint64(rc.cur.FramesSent())
	rc.cumSamples += uint64(rc.cur.SamplesSent())
	_ = rc.cur.Abort()
	rc.cur = nil
	rc.downSince = time.Now()
}

// ensureConnLocked blocks until a connection is live, redialing with
// exponential backoff. Returns errStillDown once the outage exceeds
// MaxDown (the caller sheds), net.ErrClosed after Close. Caller holds
// mu — which intentionally serializes every other API against the
// redial loop; Close does not need mu to interrupt it.
func (rc *ReconnectClient) ensureConnLocked() error {
	if rc.cur != nil {
		return nil
	}
	attempt := 0
	for {
		if rc.closed.Load() {
			return net.ErrClosed
		}
		if rc.dialOnceLocked() {
			return nil
		}
		if rc.cfg.MaxDown > 0 && time.Since(rc.downSince) >= rc.cfg.MaxDown {
			return errStillDown
		}
		select {
		case <-rc.closeCh:
			return net.ErrClosed
		case <-time.After(rc.backoff(attempt)):
		}
		attempt++
	}
}

// dialOnceLocked makes one connection attempt: dial, then (for every
// epoch after the first) the resume handshake carrying the cumulative
// ledger. Returns true when rc.cur is live. Caller holds mu.
func (rc *ReconnectClient) dialOnceLocked() bool {
	dial := rc.cfg.DialFunc
	if dial == nil {
		dial = func(addr string, meta StreamMeta) (*Client, error) {
			return DialTimeout(addr, meta, rc.cfg.DialTimeout, rc.cfg.WriteTimeout)
		}
	}
	c, err := dial(rc.addr, rc.meta)
	if err != nil {
		rc.dialFailures++
		rc.cfg.Metrics.Counter("wire/dial_failures").Add(1)
		return false
	}
	epoch := rc.conns
	rc.conns++
	// Every epoch after the first resumes; so does a first connection
	// that already shed payload under MaxDown — the leading gap must be
	// declared or those samples would be silently lost.
	if epoch > 0 || rc.dropFrames > 0 {
		ri := ResumeInfo{
			Epoch:          epoch,
			SentFrames:     rc.cumFrames,
			SentSamples:    rc.cumSamples,
			DroppedFrames:  rc.dropFrames,
			DroppedSamples: rc.dropSamps,
		}
		if err := c.SendResume(ri); err != nil {
			rc.dialFailures++
			rc.cfg.Metrics.Counter("wire/dial_failures").Add(1)
			rc.cumFrames += uint64(c.FramesSent())
			_ = c.Abort()
			return false
		}
		if epoch > 0 {
			rc.reconnects++
			rc.cfg.Metrics.Counter("wire/reconnects").Add(1)
			rc.logf("wire: reconnected to %s (epoch %d, %d samples sent, %d shed)",
				rc.addr, epoch, ri.SentSamples, ri.DroppedSamples)
		}
	}
	rc.cur = c
	rc.lastSend = time.Now()
	return true
}

// backoff returns the jittered exponential delay for the given attempt.
func (rc *ReconnectClient) backoff(attempt int) time.Duration {
	d := rc.cfg.MinBackoff
	for i := 0; i < attempt && d < rc.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > rc.cfg.MaxBackoff {
		d = rc.cfg.MaxBackoff
	}
	// xorshift64: cheap, deterministic under Seed, good enough to
	// decorrelate a fleet's redial phases.
	rc.rng ^= rc.rng << 13
	rc.rng ^= rc.rng >> 7
	rc.rng ^= rc.rng << 17
	frac := float64(rc.rng%1024)/1024.0*2 - 1 // [-1, 1)
	j := 1 + rc.cfg.Jitter*frac
	return time.Duration(float64(d) * j)
}

// heartbeatLoop runs while the client lives: every interval it sends a
// heartbeat if the connection has been idle that long, and — when the
// link is down — spends the tick on a single redial probe so an idle
// transmitter still recovers without a data frame to force it.
func (rc *ReconnectClient) heartbeatLoop() {
	defer rc.hbStop.Done()
	t := time.NewTicker(rc.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-rc.closeCh:
			return
		case <-t.C:
		}
		rc.mu.Lock()
		if rc.ended || rc.closed.Load() {
			rc.mu.Unlock()
			return
		}
		if rc.cur == nil {
			rc.dialOnceLocked()
		} else if time.Since(rc.lastSend) >= rc.cfg.Heartbeat {
			_ = rc.heartbeatLocked()
		}
		rc.mu.Unlock()
	}
}

func (rc *ReconnectClient) logf(format string, args ...any) {
	if rc.cfg.Logf != nil {
		rc.cfg.Logf(format, args...)
	}
}
