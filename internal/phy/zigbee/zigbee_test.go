package zigbee

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"rfdump/internal/dsp"
)

func TestChipTableProperties(t *testing.T) {
	// All 16 sequences are distinct and pairwise distant (near-orthogonal
	// DSSS codes: 802.15.4 sequences differ in >= 12 chip positions).
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			sa, sb := ChipSequence(byte(a)), ChipSequence(byte(b))
			dist := 0
			for c := 0; c < ChipsPerSymbol; c++ {
				if sa[c] != sb[c] {
					dist++
				}
			}
			if dist < 10 {
				t.Errorf("symbols %d and %d only %d chips apart", a, b, dist)
			}
		}
	}
}

func TestChipTableShiftStructure(t *testing.T) {
	// Symbols 1-7 are 4-chip cyclic shifts of symbol 0.
	s0 := ChipSequence(0)
	s1 := ChipSequence(1)
	for c := 0; c < ChipsPerSymbol; c++ {
		if s1[(c+4)%ChipsPerSymbol] != s0[c] {
			t.Fatalf("symbol 1 is not symbol 0 shifted by 4 (chip %d)", c)
		}
	}
	// Symbols 8-15 invert the odd (Q) chips of symbols 0-7.
	s8 := ChipSequence(8)
	for c := 0; c < ChipsPerSymbol; c++ {
		want := s0[c]
		if c%2 == 1 {
			want ^= 1
		}
		if s8[c] != want {
			t.Fatalf("symbol 8 chip %d", c)
		}
	}
}

func TestFCS(t *testing.T) {
	if FCS([]byte{1, 2, 3}) == FCS([]byte{1, 2, 4}) {
		t.Error("FCS collision on single-byte change")
	}
}

func TestBuildPPDU(t *testing.T) {
	psdu := []byte("sensor report 42")
	ppdu, err := BuildPPDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if len(ppdu) != PreambleBytes+2+len(psdu)+2 {
		t.Errorf("ppdu length %d", len(ppdu))
	}
	for i := 0; i < PreambleBytes; i++ {
		if ppdu[i] != 0 {
			t.Error("preamble not zeros")
		}
	}
	if ppdu[PreambleBytes] != SFD {
		t.Error("SFD missing")
	}
	if int(ppdu[PreambleBytes+1]) != len(psdu)+2 {
		t.Error("PHR length wrong")
	}
	if !bytes.Equal(ppdu[PreambleBytes+2:PreambleBytes+2+len(psdu)], psdu) {
		t.Error("psdu mangled")
	}
	if _, err := BuildPPDU(make([]byte, 130)); err == nil {
		t.Error("oversized PSDU accepted")
	}
}

func TestModulateProperties(t *testing.T) {
	mod := NewModulator()
	ppdu, _ := BuildPPDU([]byte{1, 2, 3, 4})
	burst := mod.Modulate(ppdu, 0)
	if math.Abs(burst.Samples.MeanPower()-1) > 1e-3 {
		t.Errorf("power %v", burst.Samples.MeanPower())
	}
	// Length ~ chips * samples/chip (plus half-sine tail).
	wantMin := len(ppdu) * 2 * ChipsPerSymbol * SamplesPerChip
	if len(burst.Samples) < wantMin {
		t.Errorf("burst %d samples < %d", len(burst.Samples), wantMin)
	}
	// O-QPSK with half-sine shaping is near constant envelope in the
	// steady state (offset rails sum to ~constant power).
	mid := burst.Samples[200 : len(burst.Samples)-200]
	var minP, maxP float64 = math.Inf(1), 0
	for _, s := range mid {
		p := float64(real(s))*float64(real(s)) + float64(imag(s))*float64(imag(s))
		minP = math.Min(minP, p)
		maxP = math.Max(maxP, p)
	}
	if maxP/minP > 3 {
		t.Errorf("envelope ratio %v", maxP/minP)
	}
}

func TestModulateDeterministic(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 100 {
			payload = payload[:100]
		}
		ppdu, err := BuildPPDU(payload)
		if err != nil {
			return false
		}
		m := NewModulator()
		a := m.Modulate(ppdu, 500_000)
		b := m.Modulate(ppdu, 500_000)
		if len(a.Samples) != len(b.Samples) {
			return false
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFrameAirtime(t *testing.T) {
	// 2 bytes/symbol-pair, 32 chips/symbol, 4 samples/chip.
	got := FrameAirtime(10)
	want := (PreambleBytes + 2 + 10 + 2) * 2 * ChipsPerSymbol * SamplesPerChip
	if int(got) != want {
		t.Errorf("airtime %d, want %d", got, want)
	}
}

func TestOQPSKContinuousPhaseish(t *testing.T) {
	// The MSK-like structure keeps the second phase derivative moderate;
	// this is what lets the GFSK smoothness test accept ZigBee (a known
	// cross-detection the demodulator resolves).
	mod := NewModulator()
	ppdu, _ := BuildPPDU(bytes.Repeat([]byte{0x5A}, 20))
	burst := mod.Modulate(ppdu, 0)
	d := dsp.PhaseDiff(burst.Samples[100:len(burst.Samples)-100], nil)
	dd := dsp.SecondDiff(d, nil)
	if m := dsp.MeanAbs(dd); m > 0.5 {
		t.Errorf("mean |dd| = %v, expected smooth-ish", m)
	}
}
