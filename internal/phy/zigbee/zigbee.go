// Package zigbee implements the IEEE 802.15.4 2.4 GHz O-QPSK physical
// layer: 32-chip DSSS symbol spreading at 2 Mchip/s, half-sine pulse
// shaping with the half-chip Q offset, and PPDU framing (preamble, SFD,
// PHR, FCS). It exists to demonstrate RFDump's protocol extensibility
// (paper Sections 3.1-3.2 use ZigBee as the worked example of adding a
// new protocol to existing protocol-agnostic detectors).
package zigbee

import (
	"fmt"
	"math"

	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// PHY constants for the 2.4 GHz O-QPSK PHY.
const (
	// ChipRate is 2 Mchip/s.
	ChipRate = protocols.ZigBeeChipRate
	// SamplesPerChip at the 8 Msps monitor rate.
	SamplesPerChip = phy.SampleRate / ChipRate
	// ChipsPerSymbol is the DSSS spreading factor.
	ChipsPerSymbol = 32
	// SFD is the start-of-frame delimiter byte.
	SFD byte = 0xA7
	// PreambleBytes of zeros precede the SFD.
	PreambleBytes = 4
)

// chipTable is the 802.15.4 symbol-to-chip mapping (symbol 0 sequence;
// symbols 1-7 are cyclic shifts by 4 chips; symbols 8-15 are the
// conjugated/odd-chip-inverted versions), given LSB-chip-first.
var chipTable = buildChipTable()

func buildChipTable() [16][ChipsPerSymbol]byte {
	base := [ChipsPerSymbol]byte{
		1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
		0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0,
	}
	var tbl [16][ChipsPerSymbol]byte
	for s := 0; s < 8; s++ {
		for c := 0; c < ChipsPerSymbol; c++ {
			tbl[s][c] = base[(c+ChipsPerSymbol-4*s)%ChipsPerSymbol]
		}
	}
	for s := 8; s < 16; s++ {
		for c := 0; c < ChipsPerSymbol; c++ {
			v := tbl[s-8][c]
			if c%2 == 1 { // invert odd (Q) chips
				v ^= 1
			}
			tbl[s][c] = v
		}
	}
	return tbl
}

// ChipSequence returns the 32-chip sequence of a 4-bit symbol.
func ChipSequence(sym byte) [ChipsPerSymbol]byte { return chipTable[sym&0xF] }

// FCS computes the 802.15.4 frame check sequence (CRC-16/CCITT, init 0).
func FCS(data []byte) uint16 {
	// 802.15.4 uses the reflected ITU CRC; CCITT with init 0 over
	// bit-reversed bytes is equivalent. We use the direct form on both
	// sides, which is self-consistent.
	return phy.CRC16CCITT(data, 0)
}

// BuildPPDU assembles preamble + SFD + PHR + (PSDU + FCS) as a byte
// string ready for chip spreading. PSDU length (incl. FCS) must fit the
// 7-bit PHR.
func BuildPPDU(psdu []byte) ([]byte, error) {
	n := len(psdu) + 2
	if n > 127 {
		return nil, fmt.Errorf("zigbee: PSDU %d bytes exceeds 125", len(psdu))
	}
	out := make([]byte, 0, PreambleBytes+2+n)
	out = append(out, make([]byte, PreambleBytes)...)
	out = append(out, SFD, byte(n))
	out = append(out, psdu...)
	crc := FCS(psdu)
	out = append(out, byte(crc), byte(crc>>8))
	return out, nil
}

// Modulator synthesizes O-QPSK bursts. Not safe for concurrent use.
type Modulator struct {
	halfSine []float64 // one chip of half-sine pulse, 2*SamplesPerChip long
}

// NewModulator returns an O-QPSK modulator.
func NewModulator() *Modulator {
	hs := make([]float64, 2*SamplesPerChip)
	for i := range hs {
		hs[i] = math.Sin(math.Pi * float64(i) / float64(len(hs)))
	}
	return &Modulator{halfSine: hs}
}

// Modulate spreads and modulates a PPDU byte string into a unit-power
// burst at offsetHz within the monitored band.
func (m *Modulator) Modulate(ppdu []byte, offsetHz float64) *phy.Burst {
	// Bytes to 4-bit symbols, low nibble first.
	var chips []byte
	for _, b := range ppdu {
		lo := ChipSequence(b & 0xF)
		hi := ChipSequence(b >> 4)
		chips = append(chips, lo[:]...)
		chips = append(chips, hi[:]...)
	}
	// O-QPSK: even chips on I, odd chips on Q delayed by half a chip.
	// Each chip is a half-sine spanning 2 chip periods on its rail.
	chipSpan := 2 * SamplesPerChip
	total := len(chips)*SamplesPerChip + chipSpan
	iRail := make([]float64, total)
	qRail := make([]float64, total)
	for ci, c := range chips {
		v := -1.0
		if c != 0 {
			v = 1.0
		}
		// Chip ci occupies rail samples starting at its rail position.
		// Even chips: I rail at ci*SamplesPerChip. Odd chips: Q rail,
		// naturally offset by one chip period (= half the 2-chip pulse).
		start := ci * SamplesPerChip
		rail := iRail
		if ci%2 == 1 {
			rail = qRail
		}
		for k := 0; k < chipSpan && start+k < total; k++ {
			rail[start+k] += v * m.halfSine[k]
		}
	}
	samples := make(iq.Samples, total)
	for i := range samples {
		samples[i] = complex(float32(iRail[i]), float32(qRail[i]))
	}
	if offsetHz != 0 {
		samples.FrequencyShift(offsetHz, phy.SampleRate, 0)
	}
	b := &phy.Burst{
		Proto:    protocols.ZigBee,
		Samples:  samples,
		OffsetHz: offsetHz,
		Channel:  -1,
		Frame:    append([]byte(nil), ppdu...),
		Kind:     "zigbee",
	}
	b.NormalizePower()
	return b
}

// FrameAirtime returns the airtime in samples of a PPDU carrying a PSDU
// of n bytes (excluding FCS).
func FrameAirtime(n int) iq.Tick {
	bytes := PreambleBytes + 2 + n + 2
	return iq.Tick(bytes * 2 * ChipsPerSymbol * SamplesPerChip)
}
