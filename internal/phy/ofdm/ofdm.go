// Package ofdm implements an 802.11g (ERP-OFDM / 802.11a-style) physical
// layer as the substrate for the paper's stated future work: "Since our
// hardware did not support monitoring OFDM protocols, we did not explore
// OFDM. We believe it should be possible to build quick detectors for
// OFDM" (Section 3.3). The matching fast detector lives in
// internal/core (OFDMDetector) and keys on the property that survives
// band-limited capture: the cyclic prefix makes every 4 us symbol's last
// 0.8 us a copy of the segment 3.2 us earlier, so the autocorrelation at
// lag T_FFT spikes periodically even through an 8 MHz slice of the
// 20 MHz channel.
//
// Simplifications vs IEEE 802.11-2007 clause 17 (documented per
// DESIGN.md): no convolutional coding or interleaving — DATA subcarriers
// carry raw scrambled bits. Through the 8 MHz front end the payload is
// unrecoverable regardless (only 25 of 52 subcarriers survive), exactly
// as the paper's USRP could not decode 22 MHz DSSS payloads; the burst's
// detection-relevant structure (preambles, pilots, CP timing, spectral
// occupancy) is faithful.
package ofdm

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// OFDM numerology (20 MHz 802.11a/g).
const (
	// NFFT is the subcarrier count / IFFT size at the native 20 Msps.
	NFFT = 64
	// CPLen is the cyclic prefix length in native samples (0.8 us).
	CPLen = 16
	// SymbolLen is one OFDM symbol in native samples (4 us).
	SymbolLen = NFFT + CPLen
	// NativeRate is the native sample rate (one sample per subcarrier
	// spacing x NFFT = 20 MHz).
	NativeRate = 20_000_000
	// DataCarriers is the number of data subcarriers (52 used minus 4
	// pilots).
	DataCarriers = 48
	// SymbolUS is the OFDM symbol duration in microseconds.
	SymbolUS = 4
	// MonitorSymbolLen is the symbol period as seen by the 8 Msps
	// monitor (4 us = 32 samples).
	MonitorSymbolLen = SymbolUS * phy.SampleRate / 1_000_000
	// MonitorFFTLag is T_FFT (3.2 us) in monitor samples: 25.6, so the
	// detector probes lags 25 and 26.
	MonitorFFTLagLow  = 25
	MonitorFFTLagHigh = 26
)

// usedCarriers lists the occupied subcarrier indices (-26..-1, 1..26).
func usedCarriers() []int {
	out := make([]int, 0, 52)
	for k := -26; k <= 26; k++ {
		if k != 0 {
			out = append(out, k)
		}
	}
	return out
}

// pilotCarriers per 802.11a: ±7, ±21.
var pilotSet = map[int]bool{-21: true, -7: true, 7: true, 21: true}

// stfCarriers is the L-STF frequency-domain sequence (clause 17.3.3):
// energy on every 4th subcarrier.
var stfValues = map[int]complex128{
	-24: 1 + 1i, -20: -1 - 1i, -16: 1 + 1i, -12: -1 - 1i, -8: -1 - 1i, -4: 1 + 1i,
	4: -1 - 1i, 8: -1 - 1i, 12: 1 + 1i, 16: 1 + 1i, 20: 1 + 1i, 24: 1 + 1i,
}

// ltfValues is the L-LTF BPSK sequence on carriers -26..26 (clause
// 17.3.3), index 0 = carrier -26.
var ltfSeq = []int8{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	// carrier 0 skipped
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// Modulator synthesizes 802.11g OFDM bursts, generated at the native
// 20 Msps and then observed through the 8 Msps monitor front end
// (low-pass + fractional resampling), mirroring how the 22 MHz DSSS
// modulators are band-limited to the capture bandwidth.
type Modulator struct {
	lpf *dsp.FIR
}

// NewModulator returns an OFDM modulator.
func NewModulator() *Modulator {
	// Anti-alias filter for the 20 -> 8 Msps resampling: cut at 3.8 MHz.
	return &Modulator{lpf: dsp.LowPass(3.8e6, NativeRate, 63)}
}

// ifftSymbol converts a frequency-domain map to one time-domain symbol
// with cyclic prefix at the native rate.
func ifftSymbol(carriers map[int]complex128) []complex128 {
	bins := make([]complex128, NFFT)
	for k, v := range carriers {
		idx := k
		if idx < 0 {
			idx += NFFT
		}
		bins[idx] = v
	}
	dsp.IFFT(bins)
	out := make([]complex128, SymbolLen)
	copy(out, bins[NFFT-CPLen:]) // cyclic prefix
	copy(out[CPLen:], bins)
	return out
}

// Modulate builds the burst for one PSDU at the nominal 6 Mbps BPSK
// mapping (1 bit per data subcarrier per symbol, uncoded — see package
// doc).
func (m *Modulator) Modulate(psdu []byte) *phy.Burst {
	var native []complex128

	// L-STF: the short training field is 10 repetitions of a 0.8 us
	// pattern; equivalently 2 symbols built from the STF carriers.
	stf := map[int]complex128{}
	scale := math.Sqrt(13.0 / 6.0)
	for k, v := range stfValues {
		stf[k] = v * complex(scale, 0)
	}
	stfSym := ifftSymbol(stf)
	native = append(native, stfSym...)
	native = append(native, stfSym...)

	// L-LTF: two repetitions of the long training symbol.
	ltf := map[int]complex128{}
	i := 0
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		ltf[k] = complex(float64(ltfSeq[i]), 0)
		i++
	}
	ltfSym := ifftSymbol(ltf)
	native = append(native, ltfSym...)
	native = append(native, ltfSym...)

	// L-SIG + DATA symbols: BPSK data subcarriers, fixed pilots.
	bits := phy.BytesToBitsLSB(psdu)
	scr := phy.NewScramble802(0x5D)
	scr.Scramble(bits)
	pos := 0
	nextBit := func() float64 {
		if pos >= len(bits) {
			return 1
		}
		b := bits[pos]
		pos++
		if b == 0 {
			return -1
		}
		return 1
	}
	for pos < len(bits) {
		sym := map[int]complex128{}
		for _, k := range usedCarriers() {
			if pilotSet[k] {
				sym[k] = 1
				continue
			}
			sym[k] = complex(nextBit(), 0)
		}
		native = append(native, ifftSymbol(sym)...)
	}

	// Observe through the monitor front end: low-pass then resample
	// 20 Msps -> 8 Msps (factor 2.5) with linear interpolation.
	filtered := make([]complex64, len(native))
	for j, v := range native {
		filtered[j] = complex64(v)
	}
	m.lpf.Reset()
	m.lpf.Process(filtered, filtered)
	ratio := float64(NativeRate) / float64(phy.SampleRate)
	nOut := int(float64(len(filtered)) / ratio)
	samples := make(iq.Samples, nOut)
	for j := 0; j < nOut; j++ {
		x := float64(j) * ratio
		i0 := int(x)
		frac := float32(x - float64(i0))
		a := filtered[i0]
		b := a
		if i0+1 < len(filtered) {
			b = filtered[i0+1]
		}
		samples[j] = a*(1-complex(frac, 0)) + b*complex(frac, 0)
	}

	burst := &phy.Burst{
		Proto:   protocols.WiFi80211g,
		Samples: samples,
		Channel: -1,
		Frame:   append([]byte(nil), psdu...),
		Kind:    "ofdm-data",
	}
	burst.NormalizePower()
	return burst
}

// AirtimeUS returns the burst airtime in microseconds for a PSDU of n
// bytes at the uncoded-BPSK mapping: 16 us preamble + ceil(bits/48)
// 4 us symbols.
func AirtimeUS(n int) int {
	syms := (n*8 + DataCarriers - 1) / DataCarriers
	return 16 + syms*SymbolUS
}
