package ofdm

import (
	"math"
	"testing"

	"rfdump/internal/phy"
)

func TestModulateBasics(t *testing.T) {
	mod := NewModulator()
	psdu := make([]byte, 120)
	for i := range psdu {
		psdu[i] = byte(i * 3)
	}
	burst := mod.Modulate(psdu)
	if burst.Proto.String() != "802.11g" {
		t.Errorf("proto %v", burst.Proto)
	}
	if math.Abs(burst.Samples.MeanPower()-1) > 1e-3 {
		t.Errorf("power %v", burst.Samples.MeanPower())
	}
	// Airtime: preamble 16 us + ceil(960/48)=20 symbols * 4 us = 96 us
	// -> 768 monitor samples.
	wantUS := AirtimeUS(len(psdu))
	gotUS := len(burst.Samples) * 1_000_000 / phy.SampleRate
	if gotUS < wantUS-2 || gotUS > wantUS+2 {
		t.Errorf("airtime %d us, want %d", gotUS, wantUS)
	}
}

func TestAirtimeUS(t *testing.T) {
	if AirtimeUS(6) != 16+4 { // 48 bits = 1 symbol
		t.Errorf("AirtimeUS(6) = %d", AirtimeUS(6))
	}
	if AirtimeUS(12) != 16+8 { // 96 bits = 2 symbols
		t.Errorf("AirtimeUS(12) = %d", AirtimeUS(12))
	}
}

func TestCyclicPrefixVisibleThroughMonitor(t *testing.T) {
	// The detection-critical property: autocorrelation at the T_FFT lag
	// (25-26 monitor samples), folded by the 32-sample symbol period,
	// concentrates in a few fold phases.
	mod := NewModulator()
	psdu := make([]byte, 400)
	for i := range psdu {
		psdu[i] = byte(i*7 + 1)
	}
	burst := mod.Modulate(psdu)
	s := burst.Samples
	// Skip the preamble; analyze the data region.
	data := s[16*8:]

	best := 0.0
	for _, lag := range []int{MonitorFFTLagLow, MonitorFFTLagHigh} {
		accRe := make([]float64, MonitorSymbolLen)
		accIm := make([]float64, MonitorSymbolLen)
		var energy float64
		for i := 0; i+lag < len(data); i++ {
			a, b := data[i], data[i+lag]
			ar, ai := float64(real(a)), float64(imag(a))
			br, bi := float64(real(b)), float64(imag(b))
			ph := i % MonitorSymbolLen
			accRe[ph] += ar*br + ai*bi
			accIm[ph] += ai*br - ar*bi
			energy += ar*ar + ai*ai
		}
		for ph := 0; ph < MonitorSymbolLen; ph++ {
			m := math.Hypot(accRe[ph], accIm[ph]) / (energy / MonitorSymbolLen)
			if m > best {
				best = m
			}
		}
	}
	if best < 0.5 {
		t.Errorf("CP fold peak %.3f, want strong correlation", best)
	}
}

func TestPreambleStructure(t *testing.T) {
	// The L-STF is periodic with 0.8 us (16 native samples): through the
	// monitor it repeats every 6.4 monitor samples; check the coarser
	// property that the first 16 us (128 monitor samples) have much
	// lower amplitude variance per short window than random data would
	// after the repeating structure (the two LTF symbols are identical).
	mod := NewModulator()
	burst := mod.Modulate(make([]byte, 100))
	s := burst.Samples
	// LTF occupies monitor samples [64, 128): two identical 32-sample
	// halves... at native rate LTF = 2 x 80 samples, so through the
	// monitor the repetition lag is 25.6/32 — instead verify the STF's
	// strong 6.4-sample periodicity via autocorrelation at lag 32
	// (5 x 6.4, integer).
	stf := s[:64]
	var acc complex128
	var energy float64
	const lag = 32
	for i := 0; i+lag < len(stf); i++ {
		a, b := complex128(stf[i]), complex128(stf[i+lag])
		acc += a * complexConj(b)
		energy += real(a)*real(a) + imag(a)*imag(a)
	}
	corr := cmplxAbs128(acc) / energy
	if corr < 0.7 {
		t.Errorf("STF periodicity %.3f", corr)
	}
}

func complexConj(v complex128) complex128 { return complex(real(v), -imag(v)) }
func cmplxAbs128(v complex128) float64    { return math.Hypot(real(v), imag(v)) }

func TestDeterministic(t *testing.T) {
	m := NewModulator()
	a := m.Modulate([]byte{1, 2, 3})
	b := m.Modulate([]byte{1, 2, 3})
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("length")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("not deterministic")
		}
	}
}
