// Package phy defines what all physical layers share: the Burst type (a
// modulated transmission ready to be mixed into the ether), bit-stream
// helpers, the CRC/FEC arithmetic used by 802.11b and Bluetooth framing,
// and the channel model (gain, carrier offset, AWGN).
//
// Each concrete modulator lives in a subpackage (phy/wifi, phy/bluetooth,
// phy/zigbee, phy/microwave) and produces Bursts; the ether emulator mixes
// Bursts onto the monitored band.
package phy

import (
	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// SampleRate is the emitter/monitor sample rate. Everything in the system
// runs at the USRP-over-USB rate from the paper.
const SampleRate = iq.DefaultSampleRate

// Burst is one contiguous RF transmission: baseband samples (relative to
// the monitored band center), plus everything ground truth needs to know
// about it.
type Burst struct {
	// Proto identifies the transmitting technology and rate.
	Proto protocols.ID
	// Samples is the unit-power complex baseband waveform at SampleRate,
	// already shifted to its channel offset within the band.
	Samples iq.Samples
	// OffsetHz is the burst's center frequency relative to the band
	// center (informational; the shift is already applied to Samples).
	OffsetHz float64
	// Channel is the protocol-level channel number (e.g. Bluetooth hop
	// channel 0-78), or -1 if not applicable.
	Channel int
	// Frame is the link-layer frame the burst carries (nil for
	// non-packet sources like microwave ovens).
	Frame []byte
	// Kind labels the burst for ground truth ("data", "ack", "beacon",
	// "l2ping", "noise", ...).
	Kind string
}

// Duration returns the burst length in samples.
func (b *Burst) Duration() iq.Tick { return iq.Tick(len(b.Samples)) }

// NormalizePower scales the burst so its mean sample power is 1.0,
// making per-burst SNR assignment in the ether emulator exact.
func (b *Burst) NormalizePower() {
	p := b.Samples.MeanPower()
	if p <= 0 {
		return
	}
	b.Samples.Scale(1 / sqrt(p))
}

func sqrt(x float64) float64 {
	// Tiny wrapper so the hot path above reads cleanly.
	if x <= 0 {
		return 0
	}
	// Newton iterations seeded from a float64 bit trick would be
	// overkill; math.Sqrt is fine.
	return mathSqrt(x)
}

// Channel applies impairments to a burst in place: a gain chosen to hit a
// target SNR against a known noise floor, a carrier frequency offset, and
// an initial carrier phase. Noise itself is added once for the whole band
// by the ether emulator, not per burst.
type Channel struct {
	// SNRdB is the per-burst signal-to-noise ratio relative to the
	// ether's noise floor power.
	SNRdB float64
	// CFOHz is the residual carrier frequency offset of the transmitter.
	CFOHz float64
	// PhaseRad is the initial carrier phase.
	PhaseRad float64
}

// Apply scales the (unit-power) burst to the target SNR given the noise
// floor power and applies CFO/phase.
func (c Channel) Apply(b *Burst, noiseFloorPower float64, rate int) {
	gain := sqrt(noiseFloorPower * iq.FromDB(c.SNRdB))
	b.Samples.Scale(gain)
	if c.PhaseRad != 0 {
		b.Samples.Rotate(c.PhaseRad)
	}
	if c.CFOHz != 0 {
		b.Samples.FrequencyShift(c.CFOHz, rate, 0)
	}
}

// UpsampleBits expands a ±1 symbol sequence to sps samples per symbol as a
// real-valued NRZ waveform.
func UpsampleBits(bits []byte, sps int) []float64 {
	out := make([]float64, len(bits)*sps)
	for i, b := range bits {
		v := -1.0
		if b != 0 {
			v = 1.0
		}
		for k := 0; k < sps; k++ {
			out[i*sps+k] = v
		}
	}
	return out
}

// BytesToBitsLSB unpacks bytes into bits, least-significant bit first
// (the 802.11 and Bluetooth over-the-air bit order).
func BytesToBitsLSB(data []byte) []byte {
	out := make([]byte, 0, len(data)*8)
	for _, by := range data {
		for k := 0; k < 8; k++ {
			out = append(out, (by>>k)&1)
		}
	}
	return out
}

// BitsToBytesLSB packs bits (LSB-first per byte) into bytes. Trailing bits
// that do not fill a byte are dropped.
func BitsToBytesLSB(bits []byte) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var by byte
		for k := 0; k < 8; k++ {
			if bits[i+k] != 0 {
				by |= 1 << k
			}
		}
		out = append(out, by)
	}
	return out
}

// Uint16ToBitsLSB unpacks a 16-bit value LSB first.
func Uint16ToBitsLSB(v uint16) []byte {
	out := make([]byte, 16)
	for k := 0; k < 16; k++ {
		out[k] = byte((v >> k) & 1)
	}
	return out
}

// BitsToUint16LSB packs up to 16 bits, LSB first.
func BitsToUint16LSB(bits []byte) uint16 {
	var v uint16
	for k := 0; k < len(bits) && k < 16; k++ {
		if bits[k] != 0 {
			v |= 1 << k
		}
	}
	return v
}

// Repeat3 encodes bits with the Bluetooth rate-1/3 repetition FEC: each
// bit is sent three times.
func Repeat3(bits []byte) []byte {
	out := make([]byte, 0, len(bits)*3)
	for _, b := range bits {
		out = append(out, b, b, b)
	}
	return out
}

// Majority3 decodes rate-1/3 repetition FEC by majority vote. The input
// length is truncated to a multiple of 3.
func Majority3(bits []byte) []byte {
	n := len(bits) / 3
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		s := int(bits[3*i]) + int(bits[3*i+1]) + int(bits[3*i+2])
		if s >= 2 {
			out[i] = 1
		}
	}
	return out
}

// Whitener is the x^7 + x^4 + 1 LFSR used both by the 802.11b scrambler
// and Bluetooth data whitening (with different initializations and
// feedback arrangements; see the concrete modulators).
type Whitener struct {
	state byte // 7-bit state
}

// NewWhitener returns a whitener with the given 7-bit initial state.
func NewWhitener(init byte) *Whitener {
	return &Whitener{state: init & 0x7F}
}

// Next returns the next whitening bit and advances the LFSR
// (x^7 + x^4 + 1, Fibonacci form).
func (w *Whitener) Next() byte {
	out := (w.state >> 6) & 1        // tap x^7
	fb := out ^ ((w.state >> 3) & 1) // tap x^4
	w.state = ((w.state << 1) | fb) & 0x7F
	return out
}

// XorStream XORs a whitening sequence over bits in place and returns bits.
func (w *Whitener) XorStream(bits []byte) []byte {
	for i := range bits {
		bits[i] ^= w.Next()
	}
	return bits
}

// Scramble802 implements the 802.11b self-synchronizing scrambler
// s(x) = x^7 + x^4 + 1 operating on the data bits themselves (the output
// feeds the shift register), so the receiver descrambles without knowing
// the initial state after 7 bits.
type Scramble802 struct {
	state byte
}

// NewScramble802 returns a scrambler seeded with the standard 0x6C
// initial state (the value 802.11 uses for long preambles is 0x1B for
// descrambled-1s; the self-synchronizing property makes the choice
// irrelevant to the receiver).
func NewScramble802(init byte) *Scramble802 {
	return &Scramble802{state: init & 0x7F}
}

// ScrambleBit scrambles one bit.
func (s *Scramble802) ScrambleBit(b byte) byte {
	fb := ((s.state >> 3) & 1) ^ ((s.state >> 6) & 1)
	out := (b ^ fb) & 1
	s.state = ((s.state << 1) | out) & 0x7F
	return out
}

// DescrambleBit inverts ScrambleBit (self-synchronizing: the register is
// fed with the received scrambled bit).
func (s *Scramble802) DescrambleBit(b byte) byte {
	fb := ((s.state >> 3) & 1) ^ ((s.state >> 6) & 1)
	out := (b ^ fb) & 1
	s.state = ((s.state << 1) | (b & 1)) & 0x7F
	return out
}

// Scramble scrambles a bit slice in place and returns it.
func (s *Scramble802) Scramble(bits []byte) []byte {
	for i := range bits {
		bits[i] = s.ScrambleBit(bits[i])
	}
	return bits
}

// Descramble descrambles a bit slice in place and returns it.
func (s *Scramble802) Descramble(bits []byte) []byte {
	for i := range bits {
		bits[i] = s.DescrambleBit(bits[i])
	}
	return bits
}

// GaussianShaper builds the shared GFSK shaping filter once.
func GaussianShaper(bt float64, sps, span int) *dsp.FIR {
	return dsp.NewFIR(dsp.GaussianTaps(bt, sps, span))
}
