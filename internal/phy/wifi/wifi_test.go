package wifi

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"rfdump/internal/dsp"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

func TestSignalForInverse(t *testing.T) {
	for _, rate := range []protocols.ID{
		protocols.WiFi80211b1M, protocols.WiFi80211b2M,
		protocols.WiFi80211b5M5, protocols.WiFi80211b11M,
	} {
		sig, err := SignalFor(rate)
		if err != nil {
			t.Fatal(err)
		}
		back, err := RateFromSignal(sig)
		if err != nil || back != rate {
			t.Errorf("%v -> %#x -> %v (%v)", rate, sig, back, err)
		}
	}
	if _, err := SignalFor(protocols.Bluetooth); err == nil {
		t.Error("SIGNAL for Bluetooth should fail")
	}
	if _, err := RateFromSignal(0x42); err == nil {
		t.Error("bogus SIGNAL should fail")
	}
}

func TestPayloadDurationUS(t *testing.T) {
	cases := []struct {
		rate  protocols.ID
		bytes int
		want  uint16
	}{
		{protocols.WiFi80211b1M, 100, 800},
		{protocols.WiFi80211b2M, 100, 400},
		{protocols.WiFi80211b5M5, 55, 80},
		{protocols.WiFi80211b11M, 11, 8},
		{protocols.WiFi80211b11M, 100, 73}, // ceil(800/11)
	}
	for _, tc := range cases {
		got, err := PayloadDurationUS(tc.rate, tc.bytes)
		if err != nil || got != tc.want {
			t.Errorf("PayloadDurationUS(%v, %d) = %d (%v), want %d", tc.rate, tc.bytes, got, err, tc.want)
		}
	}
}

func TestAirtimeIncludesPLCP(t *testing.T) {
	a, err := AirtimeUS(protocols.WiFi80211b1M, 125) // 1000 bits
	if err != nil || a != 192+1000 {
		t.Errorf("airtime = %d (%v)", a, err)
	}
}

func TestHeaderBitsRoundTrip(t *testing.T) {
	f := func(service byte, length uint16) bool {
		bits := headerBits(Signal2M, service, length)
		if len(bits) != HeaderBits {
			return false
		}
		h, err := ParseHeaderBits(bits)
		if err != nil {
			return false
		}
		return h.Signal == Signal2M && h.Service == service &&
			h.LengthUS == length && h.CRCValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderCRCDetectsCorruption(t *testing.T) {
	bits := headerBits(Signal1M, 0, 1000)
	for i := 0; i < HeaderBits; i++ {
		mut := append([]byte(nil), bits...)
		mut[i] ^= 1
		h, err := ParseHeaderBits(mut)
		if err != nil {
			continue
		}
		if h.CRCValid() {
			t.Errorf("header CRC blind to flip at bit %d", i)
		}
	}
	if _, err := ParseHeaderBits(bits[:10]); err == nil {
		t.Error("short header must error")
	}
}

func TestSymbolTemplate(t *testing.T) {
	tmpl := SymbolTemplate()
	if len(tmpl) != SymbolSPS {
		t.Fatalf("template len %d", len(tmpl))
	}
	for _, v := range tmpl {
		if v != 1 && v != -1 {
			t.Errorf("template value %v", v)
		}
	}
	// The template is the Barker sequence sampled at the 11:8 ratio.
	for m := 0; m < SymbolSPS; m++ {
		want := float64(dsp.Barker11[m*ChipsPerSymbol/SymbolSPS])
		if tmpl[m] != want {
			t.Errorf("template[%d] = %v, want %v", m, tmpl[m], want)
		}
	}
}

func TestPhaseSignature(t *testing.T) {
	sig := PhaseSignature()
	tmpl := SymbolTemplate()
	if len(sig) != SymbolSPS-1 {
		t.Fatalf("signature len %d", len(sig))
	}
	for m, s := range sig {
		flip := tmpl[m]*tmpl[m+1] < 0
		if flip != (s == math.Pi) {
			t.Errorf("signature[%d] = %v inconsistent with template", m, s)
		}
	}
}

func TestFrameBuildParseData(t *testing.T) {
	payload := []byte("ping payload")
	dst := Addr{1, 2, 3, 4, 5, 6}
	src := Addr{6, 5, 4, 3, 2, 1}
	bss := Addr{9, 9, 9, 9, 9, 9}
	frame := BuildDataFrame(dst, src, bss, 1234&0xFFF, payload)
	m, err := ParseMPDU(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !m.FCSValid {
		t.Error("FCS invalid")
	}
	if m.Addr1 != dst || m.Addr2 != src || m.Addr3 != bss {
		t.Error("addresses mangled")
	}
	if m.Seq != 1234&0xFFF {
		t.Errorf("seq = %d", m.Seq)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Error("payload mangled")
	}
	if m.IsAck() || m.IsBeacon() || m.IsBroadcast() {
		t.Error("type flags wrong")
	}
}

func TestFrameBuildParseAck(t *testing.T) {
	ra := Addr{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}
	frame := BuildAck(ra)
	if len(frame) != 14 {
		t.Errorf("ACK length %d, want 14", len(frame))
	}
	m, err := ParseMPDU(frame)
	if err != nil || !m.FCSValid || !m.IsAck() || m.Addr1 != ra {
		t.Fatalf("ACK parse: %+v err=%v", m, err)
	}
}

func TestFrameBuildParseBeacon(t *testing.T) {
	bss := Addr{2, 2, 2, 2, 2, 2}
	frame := BuildBeacon(bss, 77, "TestNet")
	m, err := ParseMPDU(frame)
	if err != nil || !m.FCSValid {
		t.Fatal(err)
	}
	if !m.IsBeacon() || !m.IsBroadcast() {
		t.Error("beacon flags")
	}
	if !bytes.Contains(m.Payload, []byte("TestNet")) {
		t.Error("SSID missing")
	}
}

func TestFrameFCSCorruption(t *testing.T) {
	f := func(payload []byte, pos uint16) bool {
		frame := BuildDataFrame(Broadcast, Addr{1}, Addr{2}, 0, payload)
		frame[int(pos)%len(frame)] ^= 0x40
		m, err := ParseMPDU(frame)
		if err != nil {
			return true // too-short after corruption is impossible here
		}
		return !m.FCSValid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseMPDUTooShort(t *testing.T) {
	if _, err := ParseMPDU(make([]byte, 8)); err == nil {
		t.Error("short frame must error")
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if a.String() != "de:ad:be:ef:00:01" {
		t.Errorf("Addr.String() = %q", a)
	}
}

func TestModulatorBurstLength(t *testing.T) {
	for _, rate := range []protocols.ID{
		protocols.WiFi80211b1M, protocols.WiFi80211b2M,
		protocols.WiFi80211b5M5, protocols.WiFi80211b11M,
	} {
		mod, err := NewModulator(rate)
		if err != nil {
			t.Fatal(err)
		}
		psdu := BuildDataFrame(Broadcast, Addr{1}, Addr{2}, 0, make([]byte, 100))
		burst, err := mod.Modulate(psdu)
		if err != nil {
			t.Fatal(err)
		}
		wantUS, _ := AirtimeUS(rate, len(psdu))
		gotUS := len(burst.Samples) / SymbolSPS
		if gotUS < wantUS-1 || gotUS > wantUS+1 {
			t.Errorf("%v: burst %d us, want %d", rate, gotUS, wantUS)
		}
		if p := burst.Samples.MeanPower(); math.Abs(p-1) > 1e-3 {
			t.Errorf("%v: burst power %v", rate, p)
		}
		if burst.Proto != rate {
			t.Errorf("burst proto %v", burst.Proto)
		}
	}
}

func TestModulatorRejectsBadRate(t *testing.T) {
	if _, err := NewModulator(protocols.Bluetooth); err == nil {
		t.Error("NewModulator(Bluetooth) should fail")
	}
}

func TestModulatedPreambleMatchesSignature(t *testing.T) {
	// The first symbols of any burst must correlate with the Barker
	// phase-change signature (that is what the fast detector relies on).
	mod, _ := NewModulator(protocols.WiFi80211b1M)
	burst, err := mod.Modulate(BuildAck(Addr{5}))
	if err != nil {
		t.Fatal(err)
	}
	sig := PhaseSignature()
	d := dsp.PhaseDiff(burst.Samples[:SymbolSPS*20], nil)
	var score float64
	n := 0
	for i, v := range d {
		m := i % SymbolSPS
		if m == SymbolSPS-1 {
			continue
		}
		score += math.Cos(v - sig[m])
		n++
	}
	if avg := score / float64(n); avg < 0.95 {
		t.Errorf("clean burst signature correlation = %v", avg)
	}
}

func TestDQPSKDecide(t *testing.T) {
	cases := []struct {
		delta  float64
		d0, d1 byte
	}{
		{0, 0, 0},
		{math.Pi / 2, 0, 1},
		{math.Pi, 1, 1},
		{-math.Pi / 2, 1, 0},
		{3 * math.Pi / 2, 1, 0},
	}
	for _, tc := range cases {
		d0, d1 := DQPSKDecide(tc.delta)
		if d0 != tc.d0 || d1 != tc.d1 {
			t.Errorf("DQPSKDecide(%v) = %d%d, want %d%d", tc.delta, d0, d1, tc.d0, tc.d1)
		}
	}
}

func TestScramblerConstantUsed(t *testing.T) {
	// Two modulations of the same PSDU are identical (deterministic TX).
	mod, _ := NewModulator(protocols.WiFi80211b1M)
	psdu := BuildAck(Addr{7})
	b1, _ := mod.Modulate(psdu)
	b2, _ := mod.Modulate(psdu)
	if len(b1.Samples) != len(b2.Samples) {
		t.Fatal("length differs")
	}
	for i := range b1.Samples {
		if b1.Samples[i] != b2.Samples[i] {
			t.Fatal("modulator is not deterministic")
		}
	}
}

func TestSFDPattern(t *testing.T) {
	sfd := SFDPattern()
	if len(sfd) != 16 {
		t.Fatalf("SFD bits = %d", len(sfd))
	}
	if got := phy.BitsToUint16LSB(sfd); got != SFD {
		t.Errorf("SFD = %#04x", got)
	}
}
