package wifi

import (
	"encoding/binary"
	"fmt"

	"rfdump/internal/phy"
)

// MAC frame type/subtype constants (IEEE 802.11 frame control field).
const (
	TypeMgmt = 0
	TypeCtrl = 1
	TypeData = 2

	SubtypeBeacon = 8
	SubtypeCTS    = 12
	SubtypeAck    = 13
	SubtypeData   = 0
)

// Addr is a 48-bit MAC address.
type Addr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// String formats the address in colon-hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// MPDU is a decoded 802.11 MAC frame.
type MPDU struct {
	FrameControl uint16
	Duration     uint16
	Addr1        Addr // receiver
	Addr2        Addr // transmitter (absent in ACK)
	Addr3        Addr // BSSID (absent in ACK)
	Seq          uint16
	Payload      []byte
	FCS          uint32
	FCSValid     bool
}

// Type returns the frame type field.
func (m *MPDU) Type() int { return int(m.FrameControl>>2) & 3 }

// Subtype returns the frame subtype field.
func (m *MPDU) Subtype() int { return int(m.FrameControl>>4) & 0xF }

// IsAck reports whether the frame is a control ACK.
func (m *MPDU) IsAck() bool { return m.Type() == TypeCtrl && m.Subtype() == SubtypeAck }

// IsCTS reports whether the frame is a CTS (incl. CTS-to-self).
func (m *MPDU) IsCTS() bool { return m.Type() == TypeCtrl && m.Subtype() == SubtypeCTS }

// IsBeacon reports whether the frame is a management beacon.
func (m *MPDU) IsBeacon() bool { return m.Type() == TypeMgmt && m.Subtype() == SubtypeBeacon }

// IsBroadcast reports whether the receiver address is broadcast.
func (m *MPDU) IsBroadcast() bool { return m.Addr1 == Broadcast }

func frameControl(ftype, subtype int) uint16 {
	return uint16(ftype&3)<<2 | uint16(subtype&0xF)<<4
}

// BuildDataFrame constructs a data MPDU (24-byte MAC header + payload +
// FCS) ready for modulation.
func BuildDataFrame(dst, src, bssid Addr, seq uint16, payload []byte) []byte {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint16(hdr[0:2], frameControl(TypeData, SubtypeData))
	binary.LittleEndian.PutUint16(hdr[2:4], 0) // duration filled by MAC if needed
	copy(hdr[4:10], dst[:])
	copy(hdr[10:16], src[:])
	copy(hdr[16:22], bssid[:])
	binary.LittleEndian.PutUint16(hdr[22:24], seq<<4)
	body := append(hdr, payload...)
	return appendFCS(body)
}

// BuildAck constructs a 14-byte control ACK addressed to ra.
func BuildAck(ra Addr) []byte {
	hdr := make([]byte, 10)
	binary.LittleEndian.PutUint16(hdr[0:2], frameControl(TypeCtrl, SubtypeAck))
	binary.LittleEndian.PutUint16(hdr[2:4], 0)
	copy(hdr[4:10], ra[:])
	return appendFCS(hdr)
}

// BuildCTS constructs a 14-byte CTS frame. With ra set to the sender's
// own address this is the CTS-to-self protection frame 802.11g stations
// transmit at an 802.11b rate so DSSS-only stations defer during the
// following OFDM exchange (the Table 2 footnote: "CTS-to-self packets
// use one of the 802.11b rates").
func BuildCTS(ra Addr, durationUS uint16) []byte {
	hdr := make([]byte, 10)
	binary.LittleEndian.PutUint16(hdr[0:2], frameControl(TypeCtrl, SubtypeCTS))
	binary.LittleEndian.PutUint16(hdr[2:4], durationUS)
	copy(hdr[4:10], ra[:])
	return appendFCS(hdr)
}

// BuildBeacon constructs a minimal beacon frame from bssid with the given
// SSID element.
func BuildBeacon(bssid Addr, seq uint16, ssid string) []byte {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint16(hdr[0:2], frameControl(TypeMgmt, SubtypeBeacon))
	copy(hdr[4:10], Broadcast[:])
	copy(hdr[10:16], bssid[:])
	copy(hdr[16:22], bssid[:])
	binary.LittleEndian.PutUint16(hdr[22:24], seq<<4)
	// Fixed fields: timestamp(8) + beacon interval(2) + capabilities(2).
	fixed := make([]byte, 12)
	binary.LittleEndian.PutUint16(fixed[8:10], 100) // 102.4 ms units
	body := append(hdr, fixed...)
	// SSID information element.
	body = append(body, 0, byte(len(ssid)))
	body = append(body, ssid...)
	return appendFCS(body)
}

func appendFCS(body []byte) []byte {
	fcs := phy.CRC32(body)
	out := make([]byte, len(body)+4)
	copy(out, body)
	binary.LittleEndian.PutUint32(out[len(body):], fcs)
	return out
}

// ParseMPDU decodes an MPDU byte string (including FCS). It returns an
// error only for frames too short to contain a header; FCS mismatches are
// reported through MPDU.FCSValid so callers can still inspect corrupted
// frames (the monitoring tool prints them flagged, like tcpdump does).
func ParseMPDU(frame []byte) (*MPDU, error) {
	if len(frame) < 14 {
		return nil, fmt.Errorf("wifi: frame too short: %d bytes", len(frame))
	}
	m := &MPDU{}
	m.FrameControl = binary.LittleEndian.Uint16(frame[0:2])
	m.Duration = binary.LittleEndian.Uint16(frame[2:4])
	copy(m.Addr1[:], frame[4:10])
	body := frame[:len(frame)-4]
	m.FCS = binary.LittleEndian.Uint32(frame[len(frame)-4:])
	m.FCSValid = phy.CRC32(body) == m.FCS
	if m.IsAck() || m.IsCTS() {
		return m, nil
	}
	if len(frame) < 28 {
		// Non-ACK frames need the full 24-byte header.
		return m, nil
	}
	copy(m.Addr2[:], frame[10:16])
	copy(m.Addr3[:], frame[16:22])
	m.Seq = binary.LittleEndian.Uint16(frame[22:24]) >> 4
	m.Payload = frame[24 : len(frame)-4]
	return m, nil
}
