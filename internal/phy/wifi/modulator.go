package wifi

import (
	"fmt"
	"math"
	"math/cmplx"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// ScramblerInit is the scrambler seed used by the transmitter. The
// receiver does not need to know it (the scrambler is self-synchronizing).
const ScramblerInit byte = 0x6C

// Modulator synthesizes 802.11b PPDUs as complex baseband bursts at
// 8 Msps. One Modulator is safe for sequential reuse; it is not safe for
// concurrent use.
type Modulator struct {
	// Rate selects the PSDU rate; the PLCP preamble and header are always
	// DBPSK at 1 Mbps (Table 2 footnote a).
	Rate protocols.ID
	// CFOHz simulates transmitter carrier offset; applied by the channel,
	// stored here so MAC schedulers can configure per-station offsets.
	CFOHz float64
}

// NewModulator returns a modulator for the given 802.11b rate.
func NewModulator(rate protocols.ID) (*Modulator, error) {
	if _, err := SignalFor(rate); err != nil {
		return nil, err
	}
	return &Modulator{Rate: rate}, nil
}

// Modulate builds the burst for one PSDU (a complete MPDU including FCS).
func (m *Modulator) Modulate(psdu []byte) (*phy.Burst, error) {
	sig, err := SignalFor(m.Rate)
	if err != nil {
		return nil, err
	}
	lengthUS, err := PayloadDurationUS(m.Rate, len(psdu))
	if err != nil {
		return nil, err
	}

	// Assemble the plaintext bit stream: sync + SFD + header + PSDU.
	bits := make([]byte, 0, PLCPBits+len(psdu)*8)
	for i := 0; i < PreambleSyncBits; i++ {
		bits = append(bits, 1)
	}
	bits = append(bits, sfdBits()...)
	bits = append(bits, headerBits(sig, 0, lengthUS)...)
	bits = append(bits, phy.BytesToBitsLSB(psdu)...)

	// Scramble everything with the self-synchronizing scrambler.
	scr := phy.NewScramble802(ScramblerInit)
	scr.Scramble(bits)

	// Spread to the 11 Mchip/s chip stream.
	chips, err := bitsToChips(bits, m.Rate)
	if err != nil {
		return nil, err
	}

	// Observe the chip stream through the 8 Msps front end: sample n
	// carries chip floor(n*11/8).
	nsamp := (len(chips)*SymbolSPS + ChipsPerSymbol - 1) / ChipsPerSymbol
	samples := make(iq.Samples, nsamp)
	for n := 0; n < nsamp; n++ {
		ci := n * ChipsPerSymbol / SymbolSPS
		if ci >= len(chips) {
			ci = len(chips) - 1
		}
		samples[n] = chips[ci]
	}

	b := &phy.Burst{
		Proto:   m.Rate,
		Samples: samples,
		Channel: -1,
		Frame:   append([]byte(nil), psdu...),
		Kind:    "data",
	}
	b.NormalizePower()
	return b, nil
}

// bitsToChips maps scrambled bits to complex chips at 11 Mchip/s. The
// first PLCPBits bits are always Barker/DBPSK; the remainder uses the
// PSDU rate's spreading.
func bitsToChips(bits []byte, rate protocols.ID) ([]complex64, error) {
	chips := make([]complex64, 0, len(bits)*ChipsPerSymbol)
	phase := 0.0

	appendBarker := func(symPhase float64) {
		c := complex64(cmplx.Rect(1, symPhase))
		for _, v := range dsp.Barker11 {
			chips = append(chips, c*complex(float32(v), 0))
		}
	}

	// PLCP preamble + header: DBPSK.
	n := PLCPBits
	if n > len(bits) {
		n = len(bits)
	}
	for _, b := range bits[:n] {
		if b != 0 {
			phase += math.Pi
		}
		appendBarker(phase)
	}
	payload := bits[n:]

	switch rate {
	case protocols.WiFi80211b1M:
		for _, b := range payload {
			if b != 0 {
				phase += math.Pi
			}
			appendBarker(phase)
		}
	case protocols.WiFi80211b2M:
		for i := 0; i < len(payload); i += 2 {
			d0 := payload[i]
			var d1 byte
			if i+1 < len(payload) {
				d1 = payload[i+1]
			}
			phase += dqpskPhase(d0, d1)
			appendBarker(phase)
		}
	case protocols.WiFi80211b5M5:
		for i := 0; i < len(payload); i += 4 {
			var d [4]byte
			copy(d[:], payload[i:minInt(i+4, len(payload))])
			phi1 := dqpskPhase(d[0], d[1])
			phase += phi1
			phi2 := float64(d[2])*math.Pi + math.Pi/2
			phi4 := float64(d[3]) * math.Pi
			chips = append(chips, cckCodeword(phase, phi2, 0, phi4)...)
		}
	case protocols.WiFi80211b11M:
		for i := 0; i < len(payload); i += 8 {
			var d [8]byte
			copy(d[:], payload[i:minInt(i+8, len(payload))])
			phi1 := dqpskPhase(d[0], d[1])
			phase += phi1
			phi2 := dqpskPhase(d[2], d[3])
			phi3 := dqpskPhase(d[4], d[5])
			phi4 := dqpskPhase(d[6], d[7])
			chips = append(chips, cckCodeword(phase, phi2, phi3, phi4)...)
		}
	default:
		return nil, fmt.Errorf("wifi: unsupported rate %v", rate)
	}
	return chips, nil
}

// dqpskPhase maps a dibit to its DQPSK phase increment
// (00→0, 01→pi/2, 11→pi, 10→3pi/2).
func dqpskPhase(d0, d1 byte) float64 {
	switch {
	case d0 == 0 && d1 == 0:
		return 0
	case d0 == 0 && d1 != 0:
		return math.Pi / 2
	case d0 != 0 && d1 != 0:
		return math.Pi
	default:
		return 3 * math.Pi / 2
	}
}

// DQPSKDecide inverts dqpskPhase given a measured phase increment.
func DQPSKDecide(delta float64) (d0, d1 byte) {
	d := dsp.WrapPhase(delta)
	switch {
	case d > -math.Pi/4 && d <= math.Pi/4:
		return 0, 0
	case d > math.Pi/4 && d <= 3*math.Pi/4:
		return 0, 1
	case d > -3*math.Pi/4 && d <= -math.Pi/4:
		return 1, 0
	default:
		return 1, 1
	}
}

// cckCodeword produces the 8-chip CCK code word for the given phases
// (phi1 is the cumulative carrier phase).
func cckCodeword(phi1, phi2, phi3, phi4 float64) []complex64 {
	e := func(p float64) complex64 { return complex64(cmplx.Rect(1, p)) }
	return []complex64{
		e(phi1 + phi2 + phi3 + phi4),
		e(phi1 + phi3 + phi4),
		e(phi1 + phi2 + phi4),
		-e(phi1 + phi4),
		e(phi1 + phi2 + phi3),
		e(phi1 + phi3),
		-e(phi1 + phi2),
		e(phi1),
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
