// Package wifi implements a complete 802.11b DSSS physical layer:
// long-preamble PLCP framing, the self-synchronizing scrambler, Barker-11
// spreading for 1/2 Mbps DBPSK/DQPSK and CCK code words for 5.5/11 Mbps,
// plus MAC frame construction (data/ACK/beacon) with FCS.
//
// The waveform model matches what the paper's USRP sees: the 11 Mchip/s
// DSSS signal observed through an 8 Msps front end, i.e. samples taken at
// the uneven 11:8 chip-to-sample ratio ("the Barker 'null' points do not
// align at sample boundaries", Section 4.5). Sample n of a burst carries
// chip floor(n*11/8), so every 1 us symbol spans exactly 8 samples with a
// fixed intra-symbol chip pattern — the "precomputed sequence of phase
// changes across 8 samples" both the detector and demodulator correlate
// against.
package wifi

import (
	"fmt"
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// PLCP constants (long preamble).
const (
	// PreambleSyncBits is the number of scrambled-1 sync bits.
	PreambleSyncBits = 128
	// SFD is the start frame delimiter bit pattern value (transmitted
	// LSB first after the sync field).
	SFD uint16 = 0xF3A0
	// HeaderBits is the PLCP header length: SIGNAL(8) SERVICE(8)
	// LENGTH(16) CRC(16).
	HeaderBits = 48
	// PLCPBits is the total overhead transmitted at 1 Mbps DBPSK.
	PLCPBits = PreambleSyncBits + 16 + HeaderBits // 192 bits = 192 us
	// SymbolSPS is samples per 1 us DBPSK/DQPSK symbol at 8 Msps.
	SymbolSPS = 8
	// ChipsPerSymbol is the Barker spreading factor.
	ChipsPerSymbol = 11
)

// SIGNAL field encodings (rate in units of 100 kbps).
const (
	Signal1M  byte = 0x0A
	Signal2M  byte = 0x14
	Signal5M5 byte = 0x37
	Signal11M byte = 0x6E
)

// SignalFor returns the SIGNAL byte for a rate ID.
func SignalFor(rate protocols.ID) (byte, error) {
	switch rate {
	case protocols.WiFi80211b1M:
		return Signal1M, nil
	case protocols.WiFi80211b2M:
		return Signal2M, nil
	case protocols.WiFi80211b5M5:
		return Signal5M5, nil
	case protocols.WiFi80211b11M:
		return Signal11M, nil
	default:
		return 0, fmt.Errorf("wifi: no SIGNAL encoding for %v", rate)
	}
}

// RateFromSignal inverts SignalFor.
func RateFromSignal(sig byte) (protocols.ID, error) {
	switch sig {
	case Signal1M:
		return protocols.WiFi80211b1M, nil
	case Signal2M:
		return protocols.WiFi80211b2M, nil
	case Signal5M5:
		return protocols.WiFi80211b5M5, nil
	case Signal11M:
		return protocols.WiFi80211b11M, nil
	default:
		return protocols.Unknown, fmt.Errorf("wifi: bad SIGNAL 0x%02x", sig)
	}
}

// chipOffsets[m] is the chip index sampled at intra-symbol sample m.
var chipOffsets = func() [SymbolSPS]int {
	var o [SymbolSPS]int
	for m := 0; m < SymbolSPS; m++ {
		o[m] = m * ChipsPerSymbol / SymbolSPS
	}
	return o
}()

// SymbolTemplate returns the 8-sample real chip pattern of one Barker
// symbol as observed at 8 Msps. Both the fast DBPSK detector and the
// demodulator correlate against this.
func SymbolTemplate() []float64 {
	t := make([]float64, SymbolSPS)
	for m := 0; m < SymbolSPS; m++ {
		t[m] = float64(dsp.Barker11[chipOffsets[m]])
	}
	return t
}

// PhaseSignature returns the expected sequence of phase changes across the
// 8 samples of a symbol caused by Barker chipping: entry m is 0 when
// template sample m+1 has the same sign as sample m, and pi when the sign
// flips. This is the precomputed signature of Section 4.5.
func PhaseSignature() []float64 {
	t := SymbolTemplate()
	sig := make([]float64, SymbolSPS-1)
	for m := 0; m+1 < SymbolSPS; m++ {
		if t[m]*t[m+1] < 0 {
			sig[m] = math.Pi
		}
	}
	return sig
}

// PLCPHeader is the decoded PLCP header.
type PLCPHeader struct {
	Signal  byte
	Service byte
	// LengthUS is the PSDU transmit duration in microseconds.
	LengthUS uint16
	CRC      uint16
}

// Rate returns the payload rate ID encoded in the header.
func (h PLCPHeader) Rate() (protocols.ID, error) { return RateFromSignal(h.Signal) }

// CRCValid reports whether the received CRC matches the header fields.
func (h PLCPHeader) CRCValid() bool {
	return h.CRC == headerCRC(h.Signal, h.Service, h.LengthUS)
}

func headerCRC(signal, service byte, lengthUS uint16) uint16 {
	return phy.CRC16PLCP([]byte{signal, service, byte(lengthUS), byte(lengthUS >> 8)})
}

// headerBits serializes the PLCP header LSB-first including its CRC.
func headerBits(signal, service byte, lengthUS uint16) []byte {
	bits := make([]byte, 0, HeaderBits)
	bits = append(bits, phy.BytesToBitsLSB([]byte{signal, service})...)
	bits = append(bits, phy.Uint16ToBitsLSB(lengthUS)...)
	bits = append(bits, phy.Uint16ToBitsLSB(headerCRC(signal, service, lengthUS))...)
	return bits
}

// ParseHeaderBits decodes 48 descrambled header bits.
func ParseHeaderBits(bits []byte) (PLCPHeader, error) {
	if len(bits) < HeaderBits {
		return PLCPHeader{}, fmt.Errorf("wifi: header needs %d bits, have %d", HeaderBits, len(bits))
	}
	var h PLCPHeader
	h.Signal = phy.BitsToBytesLSB(bits[0:8])[0]
	h.Service = phy.BitsToBytesLSB(bits[8:16])[0]
	h.LengthUS = phy.BitsToUint16LSB(bits[16:32])
	h.CRC = phy.BitsToUint16LSB(bits[32:48])
	return h, nil
}

// PayloadDurationUS returns the LENGTH field value (microseconds on air)
// for a PSDU of n bytes at the given rate.
func PayloadDurationUS(rate protocols.ID, n int) (uint16, error) {
	bits := n * 8
	switch rate {
	case protocols.WiFi80211b1M:
		return uint16(bits), nil
	case protocols.WiFi80211b2M:
		return uint16((bits + 1) / 2), nil
	case protocols.WiFi80211b5M5:
		return uint16(math.Ceil(float64(bits) / 5.5)), nil
	case protocols.WiFi80211b11M:
		return uint16(math.Ceil(float64(bits) / 11)), nil
	default:
		return 0, fmt.Errorf("wifi: unsupported rate %v", rate)
	}
}

// AirtimeUS returns the full PPDU airtime (PLCP + payload) in
// microseconds for a PSDU of n bytes.
func AirtimeUS(rate protocols.ID, n int) (int, error) {
	d, err := PayloadDurationUS(rate, n)
	if err != nil {
		return 0, err
	}
	return PLCPBits + int(d), nil
}

// sfdBits returns the SFD bit pattern, LSB first.
func sfdBits() []byte { return phy.Uint16ToBitsLSB(SFD) }

// SFDPattern exposes the descrambled SFD bits for the demodulator's
// pattern hunt.
func SFDPattern() []byte { return sfdBits() }
