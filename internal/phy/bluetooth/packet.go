// Package bluetooth implements a Bluetooth BR baseband physical layer:
// access-code framing, FEC-1/3 packet headers with HEC, DH payloads with
// CRC-16, data whitening, the 79-channel hop set, and GFSK modulation
// (h = 0.32, Gaussian BT = 0.5) at 1 Msym/s.
//
// Sync words use the spec's BCH(64,30) + Barker-extension + PN-scramble
// construction (see syncword.go), which makes them invertible: a passive
// monitor can recover the LAP of an unknown piconet from a sync word it
// hears — the BlueSniff discovery path (demod.BTDiscover).
package bluetooth

import (
	"fmt"

	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// Air interface constants.
const (
	// SymbolRate is 1 Msym/s GFSK.
	SymbolRate = protocols.BTSymbolRate
	// SPS is samples per symbol at the 8 Msps monitor rate.
	SPS = phy.SampleRate / SymbolRate
	// AccessCodeBits is preamble(4) + sync(64) + trailer(4).
	AccessCodeBits = 72
	// HeaderInfoBits is the unencoded packet header size.
	HeaderInfoBits = 18
	// HeaderAirBits is the FEC-1/3 encoded header size.
	HeaderAirBits = HeaderInfoBits * 3
	// MaxSlots is the longest packet we model (DH5).
	MaxSlots = 5
)

// PacketType is the 4-bit TYPE field of the packet header.
type PacketType byte

// Packet types used by the reproduction (ACL, basic rate).
const (
	TypeNull PacketType = 0x0
	TypePoll PacketType = 0x1
	TypeDM1  PacketType = 0x3
	TypeDH1  PacketType = 0x4
	TypeDM3  PacketType = 0xA
	TypeDH3  PacketType = 0xB
	TypeDM5  PacketType = 0xE
	TypeDH5  PacketType = 0xF
)

// String implements fmt.Stringer.
func (t PacketType) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypePoll:
		return "POLL"
	case TypeDM1:
		return "DM1"
	case TypeDH1:
		return "DH1"
	case TypeDM3:
		return "DM3"
	case TypeDH3:
		return "DH3"
	case TypeDM5:
		return "DM5"
	case TypeDH5:
		return "DH5"
	default:
		return fmt.Sprintf("TYPE(%d)", byte(t))
	}
}

// Slots returns the number of 625 us slots the packet type occupies.
func (t PacketType) Slots() int {
	switch t {
	case TypeDH3, TypeDM3:
		return 3
	case TypeDH5, TypeDM5:
		return 5
	default:
		return 1
	}
}

// IsDM reports whether the payload is protected by the rate-2/3 FEC
// (medium-rate packets trade capacity for robustness).
func (t PacketType) IsDM() bool {
	return t == TypeDM1 || t == TypeDM3 || t == TypeDM5
}

// MaxPayload returns the maximum user payload in bytes for the type.
func (t PacketType) MaxPayload() int {
	switch t {
	case TypeDH1:
		return 27
	case TypeDM1:
		return 17
	case TypeDM3:
		return 121
	case TypeDH3:
		return 183
	case TypeDM5:
		return 224
	case TypeDH5:
		return 339
	default:
		return 0
	}
}

// Device identifies a Bluetooth device for framing purposes.
type Device struct {
	// LAP is the lower address part (24 bits) that determines the access
	// code of the piconet.
	LAP uint32
	// UAP is the upper address part, seeding HEC and CRC.
	UAP byte
}

// AccessCode returns the 72 access-code bits (LSB of the sync word first),
// with the preamble chosen per spec from the sync word's first bit.
func AccessCode(lap uint32) []byte {
	sync := SyncWord(lap)
	bits := make([]byte, 0, AccessCodeBits)
	first := byte(sync & 1)
	// Preamble alternates and ends opposite to the first sync bit.
	for i := 0; i < 4; i++ {
		bits = append(bits, first^byte((4-i)%2))
	}
	for k := 0; k < 64; k++ {
		bits = append(bits, byte((sync>>k)&1))
	}
	last := byte((sync >> 63) & 1)
	for i := 0; i < 4; i++ {
		bits = append(bits, last^byte((i+1)%2))
	}
	return bits
}

// SyncPattern returns just the 64 sync-word bits for receiver correlation.
func SyncPattern(lap uint32) []byte {
	return AccessCode(lap)[4 : 4+64]
}

// Header is the decoded 18-bit packet header.
type Header struct {
	LTAddr byte // 3 bits
	Type   PacketType
	Flow   byte
	ARQN   byte
	SEQN   byte
	HEC    byte
}

// headerInfoBits serializes the first 10 header bits (before HEC),
// LSB-style field packing in transmission order.
func (h Header) headerInfoBits() []byte {
	bits := make([]byte, 0, 10)
	for k := 0; k < 3; k++ {
		bits = append(bits, (h.LTAddr>>k)&1)
	}
	for k := 0; k < 4; k++ {
		bits = append(bits, (byte(h.Type)>>k)&1)
	}
	bits = append(bits, h.Flow&1, h.ARQN&1, h.SEQN&1)
	return bits
}

// Encode produces the 54 air bits of the header (10 info + 8 HEC bits,
// FEC-1/3 encoded), before whitening.
func (h Header) Encode(uap byte) []byte {
	info := h.headerInfoBits()
	hec := phy.HEC8(info, uap)
	all := make([]byte, 0, HeaderInfoBits)
	all = append(all, info...)
	for k := 0; k < 8; k++ {
		all = append(all, (hec>>k)&1)
	}
	return phy.Repeat3(all)
}

// DecodeHeader majority-decodes 54 air bits (already de-whitened) and
// verifies the HEC. ok is false when the HEC does not match.
func DecodeHeader(airBits []byte, uap byte) (h Header, ok bool) {
	if len(airBits) < HeaderAirBits {
		return Header{}, false
	}
	info := phy.Majority3(airBits[:HeaderAirBits])
	h.LTAddr = info[0] | info[1]<<1 | info[2]<<2
	h.Type = PacketType(info[3] | info[4]<<1 | info[5]<<2 | info[6]<<3)
	h.Flow, h.ARQN, h.SEQN = info[7], info[8], info[9]
	var hec byte
	for k := 0; k < 8; k++ {
		hec |= info[10+k] << k
	}
	h.HEC = hec
	ok = phy.HEC8(info[:10], uap) == hec
	return h, ok
}

// BuildPayloadBits constructs the whitened-ready payload bit stream for a
// DH packet: 2-byte payload header (LLID=2 "start", LENGTH) + data +
// CRC-16 seeded with the UAP. Single-slot DH1 uses a 1-byte payload
// header per spec; we use the 2-byte form uniformly for simplicity (the
// demodulator mirrors this), which changes no timing or detection
// behaviour.
func BuildPayloadBits(data []byte, uap byte) []byte {
	n := len(data)
	hdr := []byte{byte(0x2 | (n&0x3F)<<2), byte(n >> 6)}
	body := append(hdr, data...)
	crc := phy.CRC16BT(body, uap)
	body = append(body, byte(crc), byte(crc>>8))
	return phy.BytesToBitsLSB(body)
}

// ParsePayloadBits inverts BuildPayloadBits, verifying the CRC.
func ParsePayloadBits(bits []byte, uap byte) (data []byte, ok bool) {
	raw := phy.BitsToBytesLSB(bits)
	if len(raw) < 4 {
		return nil, false
	}
	n := int(raw[0]>>2) | int(raw[1])<<6
	if len(raw) < 2+n+2 {
		return nil, false
	}
	body := raw[:2+n]
	crc := uint16(raw[2+n]) | uint16(raw[2+n+1])<<8
	if phy.CRC16BT(body, uap) != crc {
		return nil, false
	}
	return body[2:], true
}

// WhiteningInit derives the whitening LFSR seed from the master clock
// bits CLK[6:1], per spec with bit 6 forced to 1.
func WhiteningInit(clk uint32) byte {
	return byte(clk>>1)&0x3F | 0x40
}

// AirBits assembles the complete over-the-air bit stream of one packet:
// access code + whitened (header + payload). DM payloads pass through
// the rate-2/3 FEC before whitening, per the spec's TX chain order.
func AirBits(dev Device, h Header, payload []byte, clk uint32) []byte {
	bits := append([]byte(nil), AccessCode(dev.LAP)...)
	body := h.Encode(dev.UAP)
	if h.Type.MaxPayload() > 0 || len(payload) > 0 {
		pl := BuildPayloadBits(payload, dev.UAP)
		if h.Type.IsDM() {
			pl = phy.FEC23Encode(pl)
		}
		body = append(body, pl...)
	}
	w := phy.NewWhitener(WhiteningInit(clk))
	w.XorStream(body)
	return append(bits, body...)
}
