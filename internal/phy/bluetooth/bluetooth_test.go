package bluetooth

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"rfdump/internal/dsp"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

func TestPacketTypeProperties(t *testing.T) {
	if TypeDH5.Slots() != 5 || TypeDH3.Slots() != 3 || TypeDH1.Slots() != 1 {
		t.Error("slot counts")
	}
	if TypeDH5.MaxPayload() != 339 || TypeDH1.MaxPayload() != 27 {
		t.Error("max payloads")
	}
	if TypePoll.MaxPayload() != 0 {
		t.Error("POLL payload")
	}
	if TypeDH5.String() != "DH5" || PacketType(9).String() != "TYPE(9)" {
		t.Error("type names")
	}
}

func TestSyncWordDistinct(t *testing.T) {
	seen := map[uint64]uint32{}
	for lap := uint32(0); lap < 2000; lap++ {
		w := SyncWord(lap)
		if prev, dup := seen[w]; dup {
			t.Fatalf("LAPs %06x and %06x share a sync word", prev, lap)
		}
		seen[w] = lap
	}
}

func TestSyncWordUsesOnlyLAP(t *testing.T) {
	if SyncWord(0x123456) != SyncWord(0x01123456) {
		t.Error("bits above the 24-bit LAP must be ignored")
	}
}

func TestAccessCodeStructure(t *testing.T) {
	ac := AccessCode(0x9E8B33)
	if len(ac) != AccessCodeBits {
		t.Fatalf("access code bits = %d", len(ac))
	}
	sync := SyncPattern(0x9E8B33)
	if len(sync) != 64 {
		t.Fatalf("sync bits = %d", len(sync))
	}
	// Sync word bits are embedded LSB-first after the 4-bit preamble.
	w := SyncWord(0x9E8B33)
	for k := 0; k < 64; k++ {
		if sync[k] != byte((w>>k)&1) {
			t.Fatalf("sync bit %d mismatch", k)
		}
	}
	// Preamble alternates.
	if ac[0] == ac[1] || ac[1] == ac[2] {
		t.Error("preamble does not alternate")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(lt, flow, arqn, seqn byte, typeRaw byte) bool {
		h := Header{
			LTAddr: lt & 7,
			Type:   PacketType(typeRaw & 0xF),
			Flow:   flow & 1,
			ARQN:   arqn & 1,
			SEQN:   seqn & 1,
		}
		air := h.Encode(0x47)
		if len(air) != HeaderAirBits {
			return false
		}
		got, ok := DecodeHeader(air, 0x47)
		return ok && got.LTAddr == h.LTAddr && got.Type == h.Type &&
			got.Flow == h.Flow && got.ARQN == h.ARQN && got.SEQN == h.SEQN
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderFECCorrectsErrors(t *testing.T) {
	h := Header{LTAddr: 1, Type: TypeDH5, SEQN: 1}
	air := h.Encode(0x47)
	// One error per FEC triplet is corrected.
	for i := 0; i < len(air); i += 3 {
		air[i] ^= 1
	}
	got, ok := DecodeHeader(air, 0x47)
	if !ok || got.Type != TypeDH5 {
		t.Errorf("FEC failed: %+v ok=%v", got, ok)
	}
}

func TestHeaderHECWrongUAP(t *testing.T) {
	h := Header{LTAddr: 1, Type: TypeDH1}
	air := h.Encode(0x47)
	if _, ok := DecodeHeader(air, 0x13); ok {
		t.Error("HEC passed under wrong UAP")
	}
	if _, ok := DecodeHeader(air[:10], 0x47); ok {
		t.Error("short header decoded")
	}
}

func TestPayloadBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 339 {
			data = data[:339]
		}
		bits := BuildPayloadBits(data, 0x47)
		got, ok := ParsePayloadBits(bits, 0x47)
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPayloadCRCDetectsCorruption(t *testing.T) {
	data := []byte("l2cap echo request payload")
	bits := BuildPayloadBits(data, 0x47)
	for i := 0; i < len(bits); i += 7 {
		mut := append([]byte(nil), bits...)
		mut[i] ^= 1
		if _, ok := ParsePayloadBits(mut, 0x47); ok {
			// A flip in the length field can truncate instead; only a
			// successful parse with wrong data is a failure.
			got, _ := ParsePayloadBits(mut, 0x47)
			if bytes.Equal(got, data) {
				continue
			}
			t.Errorf("CRC blind to flip at %d", i)
		}
	}
}

func TestWhiteningInit(t *testing.T) {
	// Bit 6 is always set; only CLK[6:1] is used.
	if WhiteningInit(0)&0x40 == 0 {
		t.Error("bit 6 not forced")
	}
	if WhiteningInit(2) == WhiteningInit(4) {
		t.Error("different clocks share init")
	}
	if WhiteningInit(1) != WhiteningInit(129) {
		t.Error("high clock bits must be ignored")
	}
}

func TestAirBitsLayout(t *testing.T) {
	dev := Device{LAP: 0x123456, UAP: 0x33}
	payload := make([]byte, 50)
	h := Header{LTAddr: 2, Type: TypeDH5}
	bits := AirBits(dev, h, payload, 7)
	want := AccessCodeBits + HeaderAirBits + (2+50+2)*8
	if len(bits) != want {
		t.Errorf("air bits = %d, want %d", len(bits), want)
	}
	// Access code is not whitened: it must match exactly.
	if !bytes.Equal(bits[:AccessCodeBits], AccessCode(dev.LAP)) {
		t.Error("access code whitened or mangled")
	}
	// Header+payload ARE whitened: de-whiten and verify.
	body := append([]byte(nil), bits[AccessCodeBits:]...)
	phy.NewWhitener(WhiteningInit(7)).XorStream(body)
	got, ok := DecodeHeader(body[:HeaderAirBits], dev.UAP)
	if !ok || got.Type != TypeDH5 {
		t.Error("header not recoverable")
	}
	data, ok := ParsePayloadBits(body[HeaderAirBits:], dev.UAP)
	if !ok || !bytes.Equal(data, payload) {
		t.Error("payload not recoverable")
	}
}

func TestPacketAirLenAndDuration(t *testing.T) {
	if PacketAirBitsLen(-1) != AccessCodeBits+HeaderAirBits {
		t.Error("header-only length")
	}
	if PacketAirBitsLen(0) != AccessCodeBits+HeaderAirBits+32 {
		t.Error("empty payload length")
	}
	if int(PacketDuration(339)) != PacketAirBitsLen(339)*SPS {
		t.Error("duration")
	}
	// A max DH5 must fit in 5 slots (3125 us = 25000 samples).
	if PacketDuration(339) > 25000 {
		t.Errorf("DH5 duration %d samples exceeds 5 slots", PacketDuration(339))
	}
}

func TestHopSequenceCoverage(t *testing.T) {
	hs := NewHopSequence(0x9E8B33)
	counts := make([]int, protocols.BTChannels)
	const n = 79 * 100
	for clk := uint32(0); clk < n; clk++ {
		ch := hs.ChannelAt(clk)
		if ch < 0 || ch >= protocols.BTChannels {
			t.Fatalf("channel %d out of range", ch)
		}
		counts[ch]++
	}
	for ch, c := range counts {
		if c < 50 || c > 160 {
			t.Errorf("channel %d visited %d times (want ~100)", ch, c)
		}
	}
	// Deterministic per (LAP, clk).
	if hs.ChannelAt(5) != NewHopSequence(0x9E8B33).ChannelAt(5) {
		t.Error("hop sequence not deterministic")
	}
	if hs.ChannelAt(5) == NewHopSequence(0x123456).ChannelAt(5) &&
		hs.ChannelAt(6) == NewHopSequence(0x123456).ChannelAt(6) &&
		hs.ChannelAt(7) == NewHopSequence(0x123456).ChannelAt(7) {
		t.Error("different piconets hop identically")
	}
}

func TestGFSKConstantEnvelope(t *testing.T) {
	mod := NewModulator()
	bits := make([]byte, 200)
	for i := range bits {
		bits[i] = byte(i>>1) & 1
	}
	burst := mod.ModulateBits(bits, 0, 3)
	if math.Abs(burst.Samples.MeanPower()-1) > 1e-3 {
		t.Errorf("mean power %v", burst.Samples.MeanPower())
	}
	// GFSK is constant-envelope: every sample has the same magnitude.
	for i, s := range burst.Samples {
		p := float64(real(s))*float64(real(s)) + float64(imag(s))*float64(imag(s))
		if math.Abs(p-1) > 0.01 {
			t.Fatalf("envelope varies at %d: %v", i, p)
		}
	}
}

func TestGFSKContinuousPhase(t *testing.T) {
	mod := NewModulator()
	bits := []byte{1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1}
	burst := mod.ModulateBits(bits, 0, 0)
	d := dsp.PhaseDiff(burst.Samples, nil)
	dd := dsp.SecondDiff(d, nil)
	// The second derivative of GFSK phase stays near zero — the exact
	// property the Bluetooth phase detector uses (paper Section 4.5).
	if m := dsp.MeanAbs(dd); m > 0.05 {
		t.Errorf("mean |second derivative| = %v", m)
	}
	// Peak per-sample deviation bounded by the modulation index.
	maxStep := math.Pi * ModIndex / float64(SPS) * 1.2
	for i, v := range d {
		if math.Abs(v) > maxStep {
			t.Fatalf("phase step %v at %d exceeds modulation index bound", v, i)
		}
	}
}

func TestGFSKChannelOffset(t *testing.T) {
	mod := NewModulator()
	bits := make([]byte, 400)
	for i := range bits {
		bits[i] = byte(i) & 1 // alternating: zero-mean data
	}
	const offset = 2.5e6
	burst := mod.ModulateBits(bits, offset, 6)
	d := dsp.PhaseDiff(burst.Samples, nil)
	drift := dsp.CircularMean(d)
	gotHz := drift * float64(phy.SampleRate) / (2 * math.Pi)
	if math.Abs(gotHz-offset) > 60e3 {
		t.Errorf("measured offset %v Hz, want %v", gotHz, offset)
	}
}

func TestModulatePacketGroundTruthLabels(t *testing.T) {
	mod := NewModulator()
	dev := Device{LAP: 1, UAP: 2}
	b := mod.ModulatePacket(dev, Header{Type: TypeDH1}, []byte{1, 2}, 0, 0, 4)
	if b.Proto != protocols.Bluetooth || b.Channel != 4 || b.Kind != "DH1" {
		t.Errorf("labels: %v %d %q", b.Proto, b.Channel, b.Kind)
	}
	if !bytes.Equal(b.Frame, []byte{1, 2}) {
		t.Error("frame not recorded")
	}
}

func TestSyncWordBCHRoundTrip(t *testing.T) {
	for _, lap := range []uint32{0, 1, 0x9E8B33, 0x800000, 0xFFFFFF, 0x123456} {
		sync := SyncWord(lap)
		got, ok := RecoverLAP(sync)
		if !ok || got != lap {
			t.Errorf("LAP %06x -> sync %016x -> %06x ok=%v", lap, sync, got, ok)
		}
	}
}

func TestSyncWordBCHRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		lap := raw & 0xFFFFFF
		got, ok := RecoverLAP(SyncWord(lap))
		return ok && got == lap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecoverLAPRejectsCorruption(t *testing.T) {
	sync := SyncWord(0x9E8B33)
	for bit := 0; bit < 64; bit++ {
		if _, ok := RecoverLAP(sync ^ (1 << bit)); ok {
			t.Errorf("single-bit error at %d accepted", bit)
		}
	}
}

func TestRecoverLAPRejectsRandom(t *testing.T) {
	r := dsp.NewRand(99)
	accepted := 0
	for i := 0; i < 100_000; i++ {
		if _, ok := RecoverLAP(r.Uint64()); ok {
			accepted++
		}
	}
	// Parity (34 bits) + extension (6 bits) pass chance ~2^-40.
	if accepted > 0 {
		t.Errorf("%d random words accepted", accepted)
	}
}
