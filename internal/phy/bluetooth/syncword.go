package bluetooth

// Bluetooth BR access-code sync words are (64,30) expurgated BCH
// codewords: 24 LAP bits plus a 6-bit Barker extension, scrambled with a
// fixed 64-bit PN word and protected by 34 parity bits. The construction
// matters to a passive monitor because it is *invertible*: given a sync
// word heard off the air, the LAP of an unknown piconet can be recovered
// and its parity verified — which is exactly how BlueSniff discovers
// piconets without pairing. (Bit-ordering conventions are internal; TX
// and RX here share them, and the spectral/recovery properties match the
// spec's construction.)

// bchGen is the BCH(64,30) generator polynomial, degree 34
// (octal 260534236651 per the Bluetooth core specification).
const bchGen uint64 = 0o260534236651

// pnWord is the 64-bit scrambling sequence applied to the codeword.
const pnWord uint64 = 0x83848D96BBCC54FC

// barkerExt returns the 6-bit Barker extension selected by the LAP MSB
// (it guarantees good autocorrelation of the final code).
func barkerExt(lap uint32) uint64 {
	if lap>>23&1 == 1 {
		return 0b110010
	}
	return 0b001101
}

// polyMod reduces v modulo the degree-34 generator.
func polyMod(v uint64) uint64 {
	for i := 63; i >= 34; i-- {
		if v>>uint(i)&1 == 1 {
			v ^= bchGen << (uint(i) - 34)
		}
	}
	return v & (1<<34 - 1)
}

// SyncWord derives the 64-bit access-code sync word of a piconet from
// its LAP via the BCH(64,30) construction.
func SyncWord(lap uint32) uint64 {
	lap &= 0xFFFFFF
	data := barkerExt(lap)<<24 | uint64(lap) // 30 information bits
	dataW := data ^ (pnWord >> 34)           // pre-scramble information
	parity := polyMod(dataW << 34)
	cw := dataW<<34 | parity
	return cw ^ pnWord
}

// RecoverLAP inverts SyncWord: it descrambles a received 64-bit sync
// word, verifies the BCH parity and the Barker extension, and returns
// the transmitting piconet's LAP. ok is false for anything that is not a
// valid (error-free) sync word — random bits pass with probability
// ~2^-40.
func RecoverLAP(sync uint64) (lap uint32, ok bool) {
	cw := sync ^ pnWord
	if polyMod(cw) != 0 {
		return 0, false
	}
	dataW := cw >> 34
	data := dataW ^ (pnWord >> 34)
	lap = uint32(data & 0xFFFFFF)
	if data>>24 != barkerExt(lap) {
		return 0, false
	}
	return lap, true
}
