package bluetooth

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// GFSK parameters (Table 2 / Bluetooth core spec).
const (
	// ModIndex is the nominal modulation index h: peak-to-peak frequency
	// deviation of h * symbol rate.
	ModIndex = protocols.BTModIndex
	// GaussBT is the Gaussian shaping bandwidth-time product.
	GaussBT = protocols.BTGaussianBT
	// shaperSpan is the shaping filter span in symbols.
	shaperSpan = 3
)

// Modulator synthesizes Bluetooth GFSK bursts at 8 Msps. Not safe for
// concurrent use.
type Modulator struct {
	shaper *dsp.FIR
}

// NewModulator returns a GFSK modulator.
func NewModulator() *Modulator {
	return &Modulator{shaper: phy.GaussianShaper(GaussBT, SPS, shaperSpan)}
}

// ModulateBits converts an air bit stream to a unit-power GFSK burst
// centered at offsetHz within the monitored band. channel is recorded for
// ground truth.
func (m *Modulator) ModulateBits(bits []byte, offsetHz float64, channel int) *phy.Burst {
	// NRZ upsample, Gaussian shape, integrate to phase, exponentiate.
	nrz := phy.UpsampleBits(bits, SPS)
	// Pad with half the filter span so the last symbol's energy is
	// emitted before the burst ends.
	pad := SPS * shaperSpan / 2
	nrz = append(nrz, make([]float64, pad)...)
	shaped := m.shaper.ApplyReal(nrz)

	// Phase step per sample for a full-scale symbol: the total phase
	// accumulated over one symbol must be pi * h.
	step := math.Pi * ModIndex / float64(SPS)
	samples := make(iq.Samples, len(shaped))
	phase := 0.0
	for i, v := range shaped {
		phase += step * v
		samples[i] = complex64(complex(math.Cos(phase), math.Sin(phase)))
	}
	if offsetHz != 0 {
		samples.FrequencyShift(offsetHz, phy.SampleRate, 0)
	}
	b := &phy.Burst{
		Proto:    protocols.Bluetooth,
		Samples:  samples,
		OffsetHz: offsetHz,
		Channel:  channel,
		Kind:     "bt",
	}
	b.NormalizePower()
	return b
}

// ModulatePacket assembles and modulates a complete packet.
func (m *Modulator) ModulatePacket(dev Device, h Header, payload []byte, clk uint32, offsetHz float64, channel int) *phy.Burst {
	bits := AirBits(dev, h, payload, clk)
	b := m.ModulateBits(bits, offsetHz, channel)
	b.Frame = append([]byte(nil), payload...)
	b.Kind = h.Type.String()
	return b
}

// PacketAirBitsLen returns the number of air bits for a payload of n user
// bytes (access code + header + payload header + data + CRC).
func PacketAirBitsLen(n int) int {
	if n < 0 {
		return AccessCodeBits + HeaderAirBits
	}
	return AccessCodeBits + HeaderAirBits + (2+n+2)*8
}

// PacketDuration returns the airtime of a packet with n payload bytes in
// samples at the monitor rate.
func PacketDuration(n int) iq.Tick {
	return iq.Tick(PacketAirBitsLen(n) * SPS)
}

// HopSequence is a deterministic pseudo-random frequency hop generator
// over the 79 BR channels, seeded per piconet. It is not the spec's hop
// selection kernel, but it has the property the monitor cares about:
// uniform pseudo-random coverage of all 79 channels keyed by (LAP, clk).
type HopSequence struct {
	lap uint32
}

// NewHopSequence returns the hop generator for a piconet.
func NewHopSequence(lap uint32) *HopSequence {
	return &HopSequence{lap: lap}
}

// ChannelAt returns the hop channel in [0, 79) for master clock slot clk.
func (hs *HopSequence) ChannelAt(clk uint32) int {
	z := uint64(hs.lap)<<32 | uint64(clk)
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return int(z % protocols.BTChannels)
}
