package phy

// Bluetooth rate-2/3 FEC: the (15,10) shortened Hamming code used by DM
// packets. Generator g(D) = (D+1)(D^4+D+1) = D^5+D^4+D^2+1; systematic
// encoding appends 5 parity bits to each 10 information bits; the
// decoder corrects any single bit error per 15-bit block.

// fec23Gen is the degree-5 generator polynomial (0b110101).
const fec23Gen = 0b110101

// fec23Mod reduces a (up to 15-bit) polynomial modulo the generator.
func fec23Mod(v uint32) uint32 {
	for i := 14; i >= 5; i-- {
		if v>>uint(i)&1 == 1 {
			v ^= fec23Gen << (uint(i) - 5)
		}
	}
	return v & 0x1F
}

// fec23Syndromes maps each nonzero syndrome to the bit position (0-14,
// LSB = first parity bit) whose single flip produces it.
var fec23Syndromes = func() [32]int8 {
	var tbl [32]int8
	for i := range tbl {
		tbl[i] = -1
	}
	for pos := 0; pos < 15; pos++ {
		s := fec23Mod(1 << pos)
		tbl[s] = int8(pos)
	}
	return tbl
}()

// fec23EncodeBlock encodes 10 information bits into a 15-bit codeword
// (information in bits 5-14, parity in bits 0-4).
func fec23EncodeBlock(data uint32) uint32 {
	data &= 0x3FF
	return data<<5 | fec23Mod(data<<5)
}

// fec23DecodeBlock corrects up to one error and returns the 10
// information bits; ok is false for uncorrectable (2+ error) patterns
// whose syndrome matches no single-bit flip.
func fec23DecodeBlock(cw uint32) (data uint32, ok bool) {
	cw &= 0x7FFF
	s := fec23Mod(cw)
	if s != 0 {
		pos := fec23Syndromes[s]
		if pos < 0 {
			return cw >> 5, false
		}
		cw ^= 1 << uint(pos)
	}
	return cw >> 5, true
}

// FEC23Encode encodes a bit slice with the (15,10) code, zero-padding
// the last block. The output length is ceil(len/10)*15 bits.
func FEC23Encode(bits []byte) []byte {
	nblocks := (len(bits) + 9) / 10
	out := make([]byte, 0, nblocks*15)
	for b := 0; b < nblocks; b++ {
		var data uint32
		for k := 0; k < 10; k++ {
			idx := b*10 + k
			if idx < len(bits) && bits[idx] != 0 {
				data |= 1 << k
			}
		}
		cw := fec23EncodeBlock(data)
		// Transmit information bits first, then parity (order is a
		// shared TX/RX convention here).
		for k := 0; k < 10; k++ {
			out = append(out, byte(cw>>(5+uint(k))&1))
		}
		for k := 0; k < 5; k++ {
			out = append(out, byte(cw>>uint(k)&1))
		}
	}
	return out
}

// FEC23Decode decodes a (15,10)-coded bit slice, correcting up to one
// error per block. ok reports whether every block was decodable; the
// best-effort data is returned regardless. Input is truncated to a
// multiple of 15 bits.
func FEC23Decode(bits []byte) (data []byte, ok bool) {
	nblocks := len(bits) / 15
	data = make([]byte, 0, nblocks*10)
	ok = true
	for b := 0; b < nblocks; b++ {
		var cw uint32
		for k := 0; k < 10; k++ {
			if bits[b*15+k] != 0 {
				cw |= 1 << (5 + uint(k))
			}
		}
		for k := 0; k < 5; k++ {
			if bits[b*15+10+k] != 0 {
				cw |= 1 << uint(k)
			}
		}
		d, blockOK := fec23DecodeBlock(cw)
		if !blockOK {
			ok = false
		}
		for k := 0; k < 10; k++ {
			data = append(data, byte(d>>uint(k)&1))
		}
	}
	return data, ok
}

// FEC23AirBits returns the encoded length for n plain bits.
func FEC23AirBits(n int) int { return (n + 9) / 10 * 15 }
