package phy

import "math"

// mathSqrt is split out so phy.go stays free of a direct math import in
// its hot path helper.
func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// CRC16CCITT computes the CRC-16/CCITT-FALSE over data (poly 0x1021,
// init 0xFFFF, no reflection). 802.11b uses this (ones-complemented) for
// the PLCP header CRC; Bluetooth uses the same polynomial with a
// different init for payload CRCs.
func CRC16CCITT(data []byte, init uint16) uint16 {
	crc := init
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = (crc << 1) ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CRC16PLCP is the 802.11b PLCP header CRC: CCITT with init 0xFFFF,
// ones-complemented output.
func CRC16PLCP(data []byte) uint16 {
	return ^CRC16CCITT(data, 0xFFFF)
}

// CRC16BT is the Bluetooth payload CRC (poly 0x1021, init from UAP; the
// spec seeds with the UAP in the high byte).
func CRC16BT(data []byte, uap byte) uint16 {
	return CRC16CCITT(data, uint16(uap)<<8)
}

// crc32Table is the reflected CRC-32 (IEEE 802.3) table, built lazily.
var crc32Table [256]uint32

func init() {
	for i := range crc32Table {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ 0xEDB88320
			} else {
				c >>= 1
			}
		}
		crc32Table[i] = c
	}
}

// CRC32 computes the IEEE CRC-32 used as the 802.11 FCS.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc32Table[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

// HEC8 computes the Bluetooth 8-bit header error check
// (poly x^8+x^7+x^5+x^2+x+1 = 0x1A7 with the leading term, i.e. 0xA7),
// seeded with the UAP, over the 10 header bits (LSB-first order).
func HEC8(headerBits []byte, uap byte) byte {
	// LFSR implementation per Bluetooth core spec Figure: the register is
	// initialized with the UAP and the header bits are shifted in.
	reg := uap
	for _, bit := range headerBits {
		fb := ((reg >> 7) & 1) ^ (bit & 1)
		reg <<= 1
		if fb != 0 {
			reg ^= 0xA7 // x^7+x^5+x^2+x+1 taps (plus implicit x^8)
		}
	}
	return reg
}
