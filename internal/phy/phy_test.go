package phy

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
)

func TestBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBitsLSB(data)
		if len(bits) != len(data)*8 {
			return false
		}
		return bytes.Equal(BitsToBytesLSB(bits), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsLSBOrder(t *testing.T) {
	bits := BytesToBitsLSB([]byte{0x01, 0x80})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Errorf("bits = %v", bits)
	}
}

func TestUint16Bits(t *testing.T) {
	f := func(v uint16) bool {
		return BitsToUint16LSB(Uint16ToBitsLSB(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeat3Majority3(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0}
	enc := Repeat3(bits)
	if len(enc) != 15 {
		t.Fatalf("encoded len %d", len(enc))
	}
	if !bytes.Equal(Majority3(enc), bits) {
		t.Error("clean round trip")
	}
	// One error per triplet is corrected.
	for i := 0; i < len(enc); i += 3 {
		enc[i] ^= 1
	}
	if !bytes.Equal(Majority3(enc), bits) {
		t.Error("single-error correction")
	}
}

func TestMajority3CorrectsAnySingleError(t *testing.T) {
	f := func(data []byte, pos uint8) bool {
		if len(data) == 0 {
			return true
		}
		bits := BytesToBitsLSB(data)
		enc := Repeat3(bits)
		enc[int(pos)%len(enc)] ^= 1
		return bytes.Equal(Majority3(enc), bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC16CCITTVector(t *testing.T) {
	// Standard CRC-16/CCITT-FALSE check value: "123456789" -> 0x29B1.
	if got := CRC16CCITT([]byte("123456789"), 0xFFFF); got != 0x29B1 {
		t.Errorf("CRC16CCITT = %#04x, want 0x29B1", got)
	}
}

func TestCRC32Vector(t *testing.T) {
	// Standard IEEE CRC-32 check value: "123456789" -> 0xCBF43926.
	if got := CRC32([]byte("123456789")); got != 0xCBF43926 {
		t.Errorf("CRC32 = %#08x, want 0xCBF43926", got)
	}
}

func TestCRCDetectsErrors(t *testing.T) {
	f := func(data []byte, bit uint16) bool {
		if len(data) == 0 {
			return true
		}
		orig16 := CRC16PLCP(data)
		orig32 := CRC32(data)
		origBT := CRC16BT(data, 0x47)
		mut := append([]byte(nil), data...)
		mut[int(bit)%len(mut)] ^= 1 << (bit % 8)
		return CRC16PLCP(mut) != orig16 && CRC32(mut) != orig32 && CRC16BT(mut, 0x47) != origBT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHEC8Properties(t *testing.T) {
	bits := []byte{1, 0, 0, 1, 1, 1, 0, 1, 0, 1}
	h1 := HEC8(bits, 0x47)
	// Deterministic.
	if HEC8(bits, 0x47) != h1 {
		t.Error("HEC not deterministic")
	}
	// Sensitive to any bit flip.
	for i := range bits {
		mut := append([]byte(nil), bits...)
		mut[i] ^= 1
		if HEC8(mut, 0x47) == h1 {
			t.Errorf("HEC blind to flip at %d", i)
		}
	}
	// Depends on the UAP seed.
	if HEC8(bits, 0x48) == h1 {
		t.Error("HEC ignores UAP")
	}
}

func TestWhitenerInvolution(t *testing.T) {
	f := func(data []byte, init byte) bool {
		bits := BytesToBitsLSB(data)
		w1 := NewWhitener(init)
		w2 := NewWhitener(init)
		work := append([]byte(nil), bits...)
		w1.XorStream(work)
		w2.XorStream(work)
		return bytes.Equal(work, bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWhitenerSequencePeriod(t *testing.T) {
	// x^7+x^4+1 is primitive: period 127.
	w := NewWhitener(0x5A)
	seq := make([]byte, 254)
	for i := range seq {
		seq[i] = w.Next()
	}
	if !bytes.Equal(seq[:127], seq[127:]) {
		t.Error("whitener period != 127")
	}
	// Not all zero/one.
	ones := 0
	for _, b := range seq[:127] {
		ones += int(b)
	}
	if ones != 64 { // maximal-length sequences have 2^(n-1) ones
		t.Errorf("ones in period = %d, want 64", ones)
	}
}

func TestScramblerSelfSynchronizing(t *testing.T) {
	// A receiver with a *different* initial state still descrambles
	// correctly after the first 7 bits.
	f := func(data []byte, txInit, rxInit byte) bool {
		if len(data) < 3 {
			return true
		}
		bits := BytesToBitsLSB(data)
		tx := NewScramble802(txInit)
		scrambled := tx.Scramble(append([]byte(nil), bits...))
		rx := NewScramble802(rxInit)
		descrambled := rx.Descramble(append([]byte(nil), scrambled...))
		return bytes.Equal(descrambled[7:], bits[7:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScramblerBreaksRuns(t *testing.T) {
	// 128 ones must scramble to a balanced-ish sequence (the PLCP sync
	// field relies on this).
	bits := make([]byte, 128)
	for i := range bits {
		bits[i] = 1
	}
	s := NewScramble802(0x6C)
	s.Scramble(bits)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	if ones < 40 || ones > 90 {
		t.Errorf("scrambled ones = %d of 128", ones)
	}
}

func TestChannelApplySNR(t *testing.T) {
	// A unit-power burst at 10 dB over noise floor 2.0 must come out
	// with mean power 20.
	burst := &Burst{Samples: make(iq.Samples, 4000)}
	r := dsp.NewRand(1)
	for i := range burst.Samples {
		ph := r.Float64() * 2 * math.Pi
		burst.Samples[i] = complex(float32(math.Cos(ph)), float32(math.Sin(ph)))
	}
	burst.NormalizePower()
	ch := Channel{SNRdB: 10}
	ch.Apply(burst, 2.0, SampleRate)
	if p := burst.Samples.MeanPower(); math.Abs(p-20) > 0.5 {
		t.Errorf("power after channel = %v, want 20", p)
	}
}

func TestChannelApplyCFO(t *testing.T) {
	burst := &Burst{Samples: make(iq.Samples, 1000)}
	for i := range burst.Samples {
		burst.Samples[i] = 1
	}
	ch := Channel{SNRdB: 0, CFOHz: 100_000}
	ch.Apply(burst, 1.0, SampleRate)
	// The CFO turns DC into a tone: phase diff = 2*pi*f/rate.
	d := dsp.PhaseDiff(burst.Samples, nil)
	want := 2 * math.Pi * 100_000 / float64(SampleRate)
	if got := dsp.Mean(d); math.Abs(got-want) > 1e-6 {
		t.Errorf("CFO phase step = %v, want %v", got, want)
	}
}

func TestNormalizePowerIdempotent(t *testing.T) {
	burst := &Burst{Samples: iq.Samples{3, 4, complex(0, 5)}}
	burst.NormalizePower()
	if p := burst.Samples.MeanPower(); math.Abs(p-1) > 1e-5 {
		t.Errorf("power = %v", p)
	}
	burst.NormalizePower()
	if p := burst.Samples.MeanPower(); math.Abs(p-1) > 1e-5 {
		t.Errorf("power after second normalize = %v", p)
	}
	empty := &Burst{}
	empty.NormalizePower() // must not panic
}

func TestUpsampleBits(t *testing.T) {
	out := UpsampleBits([]byte{1, 0}, 3)
	want := []float64{1, 1, 1, -1, -1, -1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("upsampled = %v", out)
		}
	}
}

func TestBurstDuration(t *testing.T) {
	b := &Burst{Samples: make(iq.Samples, 123)}
	if b.Duration() != 123 {
		t.Error("Duration")
	}
}

func TestFEC23RoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBitsLSB(data)
		enc := FEC23Encode(bits)
		if len(enc) != FEC23AirBits(len(bits)) {
			return false
		}
		dec, ok := FEC23Decode(enc)
		if !ok {
			return false
		}
		return bytes.Equal(dec[:len(bits)], bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFEC23CorrectsSingleErrors(t *testing.T) {
	bits := BytesToBitsLSB([]byte("dm packet payload under fec"))
	enc := FEC23Encode(bits)
	// One error anywhere in any block is corrected.
	for pos := 0; pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 1
		dec, ok := FEC23Decode(mut)
		if !ok {
			t.Fatalf("flip at %d reported uncorrectable", pos)
		}
		if !bytes.Equal(dec[:len(bits)], bits) {
			t.Fatalf("flip at %d not corrected", pos)
		}
	}
}

func TestFEC23DetectsDoubleErrors(t *testing.T) {
	bits := BytesToBitsLSB([]byte{0xA5, 0x3C})
	enc := FEC23Encode(bits)
	failures := 0
	trials := 0
	// Two errors in one block: either flagged uncorrectable or
	// miscorrected (Hamming distance 3-4 code); it must never silently
	// return the original data claiming success after correcting.
	for a := 0; a < 15; a++ {
		for b := a + 1; b < 15; b++ {
			mut := append([]byte(nil), enc...)
			mut[a] ^= 1
			mut[b] ^= 1
			dec, ok := FEC23Decode(mut)
			trials++
			if !ok || !bytes.Equal(dec[:len(bits)], bits) {
				failures++
			}
		}
	}
	if failures == 0 {
		t.Error("no double error was ever noticed (code distance broken)")
	}
	_ = trials
}

func TestFEC23Expansion(t *testing.T) {
	if FEC23AirBits(10) != 15 || FEC23AirBits(20) != 30 || FEC23AirBits(11) != 30 {
		t.Error("air bit math")
	}
}
