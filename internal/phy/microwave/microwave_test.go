package microwave

import (
	"math"
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

func TestDefaultOven(t *testing.T) {
	clock := iq.NewClock(0)
	o := DefaultOven(clock)
	if o.ACPeriod != clock.Ticks(protocols.MicrowaveACPeriodUS) {
		t.Errorf("AC period %d", o.ACPeriod)
	}
	if o.Duty != 0.5 {
		t.Errorf("duty %v", o.Duty)
	}
}

func TestBurstLengthMatchesDuty(t *testing.T) {
	clock := iq.NewClock(0)
	o := DefaultOven(clock)
	b := o.Burst(dsp.NewRand(1))
	if got, want := iq.Tick(len(b.Samples)), o.OnDuration(); got != want {
		t.Errorf("burst %d samples, want %d", got, want)
	}
	if b.Proto != protocols.Microwave || b.Kind != "microwave" {
		t.Error("labels")
	}
}

func TestBurstNearConstantPower(t *testing.T) {
	clock := iq.NewClock(0)
	o := DefaultOven(clock)
	b := o.Burst(dsp.NewRand(2))
	if math.Abs(b.Samples.MeanPower()-1) > 1e-3 {
		t.Errorf("mean power %v", b.Samples.MeanPower())
	}
	// Windowed power must stay close to the mean (the microwave timing
	// detector checks constant envelope).
	win := 100
	for s := 0; s+win <= len(b.Samples); s += win {
		p := b.Samples[s : s+win].MeanPower()
		if p < 0.7 || p > 1.4 {
			t.Fatalf("window %d power %v", s, p)
		}
	}
}

func TestBurstSweepsFrequency(t *testing.T) {
	clock := iq.NewClock(0)
	o := DefaultOven(clock)
	o.SweepHz = 2e6
	b := o.Burst(dsp.NewRand(3))
	d := dsp.PhaseDiff(b.Samples, nil)
	// The instantaneous frequency near the burst middle differs from the
	// start (parabolic sweep): compare window means.
	early := dsp.Mean(d[:2000])
	mid := dsp.Mean(d[len(d)/2 : len(d)/2+2000])
	if math.Abs(early-mid) < 1e-4 {
		t.Errorf("no sweep: early %v mid %v", early, mid)
	}
}

func TestBurstsVary(t *testing.T) {
	clock := iq.NewClock(0)
	o := DefaultOven(clock)
	r := dsp.NewRand(4)
	a := o.Burst(r)
	b := o.Burst(r)
	same := true
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive cycles bit-identical; magnetron jitter missing")
	}
}
