// Package microwave models a residential microwave oven as an RF source:
// the magnetron radiates with near-constant power while the half-wave
// rectified supply is above the firing threshold, so emission is gated at
// the AC line period (16.67 ms in the US) with roughly 50% duty, and the
// instantaneous frequency drifts across several MHz within each burst
// (Table 2: "Residential Microwave / AC cycle 16667/20000 / 10-75 MHz").
package microwave

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/protocols"
)

// Oven describes one emitting oven.
type Oven struct {
	// ACPeriod is the supply period in samples (60 Hz US default).
	ACPeriod iq.Tick
	// Duty is the radiating fraction of each cycle.
	Duty float64
	// SweepHz is the peak-to-peak frequency excursion within a burst.
	SweepHz float64
	// CenterOffsetHz positions the emission within the monitored band.
	CenterOffsetHz float64
	// AmplitudeRipple adds small constant-power deviation (fractional).
	AmplitudeRipple float64
}

// DefaultOven returns an oven with typical parameters.
func DefaultOven(clock iq.Clock) Oven {
	return Oven{
		ACPeriod:        clock.Ticks(protocols.MicrowaveACPeriodUS),
		Duty:            protocols.MicrowaveDuty,
		SweepHz:         2_000_000,
		CenterOffsetHz:  500_000,
		AmplitudeRipple: 0.05,
	}
}

// Burst synthesizes one AC-cycle emission burst (the "on" portion of one
// cycle). The rng drives small cycle-to-cycle variation so bursts are not
// bit-identical.
func (o Oven) Burst(rng *dsp.Rand) *phy.Burst {
	n := int(float64(o.ACPeriod) * o.Duty)
	if n <= 0 {
		n = 1
	}
	samples := make(iq.Samples, n)
	// Frequency ramps up then down within the burst (thermal drift of the
	// magnetron within the half-cycle), modelled as a parabolic sweep.
	phase := 2 * math.Pi * rng.Float64()
	jitter := 1 + 0.1*(rng.Float64()-0.5)
	for i := range samples {
		t := float64(i) / float64(n) // 0..1 within burst
		freq := o.CenterOffsetHz + o.SweepHz*jitter*(t-t*t-0.125)
		phase += 2 * math.Pi * freq / float64(phy.SampleRate)
		amp := 1 + o.AmplitudeRipple*math.Sin(2*math.Pi*8*t)
		samples[i] = complex(float32(amp*math.Cos(phase)), float32(amp*math.Sin(phase)))
	}
	b := &phy.Burst{
		Proto:    protocols.Microwave,
		Samples:  samples,
		OffsetHz: o.CenterOffsetHz,
		Channel:  -1,
		Kind:     "microwave",
	}
	b.NormalizePower()
	return b
}

// OnDuration returns the per-cycle emission length in samples.
func (o Oven) OnDuration() iq.Tick { return iq.Tick(float64(o.ACPeriod) * o.Duty) }
