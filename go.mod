module rfdump

go 1.22
