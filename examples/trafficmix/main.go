// Trafficmix reproduces the scenario of paper Section 5.1.5 as a worked
// example: simultaneous 802.11b and Bluetooth transmitters, monitored
// with the timing detectors alone, the phase detectors alone, and both —
// printing the per-family miss and false-positive rates like Table 3.
//
//	go run ./examples/trafficmix
package main

import (
	"fmt"
	"log"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/truth"
)

func main() {
	sta := func(b byte) (a wifi.Addr) {
		for i := range a {
			a[i] = b
		}
		return
	}
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  99,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 40, PayloadBytes: 500,
				InterPing: 260_000,
				Requester: sta(0x11), Responder: sta(0x22), BSSID: sta(0x33),
				CFOHz: 2500,
			},
			&mac.BluetoothPiconet{
				LAP: 0x9E8B33, UAP: 0x47, Pings: 80, InterPingSlots: 84,
				CFOHz: -900,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic mix: %.1f s, 802.11 packets %d, audible Bluetooth packets %d\n",
		float64(len(res.Samples))/float64(res.Clock.Rate),
		res.Truth.VisibleCount(protocols.WiFi80211b1M),
		res.Truth.VisibleCount(protocols.Bluetooth))
	fmt.Printf("collision fractions: 802.11 %.3f, Bluetooth %.3f\n\n",
		res.Truth.CollisionFraction(protocols.WiFi80211b1M),
		res.Truth.CollisionFraction(protocols.Bluetooth))

	t := &report.Table{
		Title: "Traffic mix results (cf. paper Table 3)",
		Headers: []string{"Detector", "miss 802.11b", "miss BT",
			"fp 802.11b", "fp BT", "CPU/RT"},
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"Timing", core.TimingOnly()},
		{"Phase", core.PhaseOnly()},
		{"Timing+Phase", core.TimingAndPhase()},
	}
	for _, c := range configs {
		mon := arch.NewRFDump(c.name, res.Clock, c.cfg)
		out, err := mon.Process(res.Samples)
		if err != nil {
			log.Fatal(err)
		}
		dets := out.TruthDetections()
		stW := truth.Match(res.Truth, dets, protocols.WiFi80211b1M)
		stB := truth.Match(res.Truth, dets, protocols.Bluetooth)
		t.AddRow(c.name, stW.MissRate(), stB.MissRate(),
			stW.FalsePosRate, stB.FalsePosRate, out.CPUPerRealTime())
	}
	t.Notes = append(t.Notes, "collided packets appear as misses (no collision detection in the fast detectors)")
	fmt.Print(t.String())
}
