// Newprotocol demonstrates the architecture's protocol extensibility
// (paper Sections 2.1 and 3.2, which use ZigBee as the worked example):
// adding support for a new technology costs only (a) a small
// protocol-specific timing block over the existing protocol-agnostic
// peak metadata, and (b) optionally an analyzer for the analysis stage.
// The peak detector, dispatcher and the rest of the pipeline are reused
// untouched.
//
// Here the new protocol is IEEE 802.15.4 (ZigBee): the timing block
// matches the 192 us turnaround between data frames and their ACKs, and
// a custom analyzer verifies the O-QPSK chip structure of forwarded
// blocks via the generic phase tools.
//
//	go run ./examples/newprotocol
package main

import (
	"fmt"
	"log"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// zigbeeVerifier is the example analyzer: it inspects blocks the ZigBee
// timing detector forwarded and reports whether the signal looks like
// half-sine O-QPSK (continuous phase, so the GFSK smoothness test also
// accepts it — the constellation estimator then separates the two).
type zigbeeVerifier struct{}

func (zigbeeVerifier) Name() string                { return "zigbee-verify" }
func (zigbeeVerifier) Accepts(f protocols.ID) bool { return f == protocols.ZigBee }
func (zigbeeVerifier) Analyze(src core.SampleAccessor, req core.AnalysisRequest, emit func(flowgraph.Item)) error {
	samples := src.Slice(req.Span)
	smooth := core.IsGFSK(samples, 0.9)
	// O-QPSK at 2 Mchip/s: estimate the constellation at chip spacing.
	est := core.EstimateConstellation(samples, 4, 16)
	emit(fmt.Sprintf("zigbee block %v: continuous-phase=%v constellation=%d-ary (occupancy %.2f)",
		req.Span, smooth, est.Points, est.Occupancy))
	return nil
}

func main() {
	res, err := ether.Run(ether.Config{
		SNRdB: 22,
		Seed:  3,
		Sources: []mac.Source{
			&mac.ZigBeeSource{
				Reports: 12, PayloadBytes: 48,
				Interval: 400_000, OffsetHz: 1_000_000,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ether: %.0f ms with %d ZigBee transmissions (data + MAC ACKs)\n\n",
		1000*float64(len(res.Samples))/float64(res.Clock.Rate),
		res.Truth.VisibleCount(protocols.ZigBee))

	// Extend the pipeline: flip on the ZigBee timing block and plug the
	// verifier into the analysis stage. Nothing else changes.
	cfg := core.Config{ZigBee: true}
	mon := arch.NewRFDump("rfdump+zigbee", res.Clock, cfg, zigbeeVerifier{})
	out, err := mon.Process(res.Samples)
	if err != nil {
		log.Fatal(err)
	}

	st := truth.Match(res.Truth, out.TruthDetections(), protocols.ZigBee)
	fmt.Printf("ZigBee timing detector: found %d/%d frames (miss %.3f, fp-rate %.5f)\n\n",
		st.Found, st.Total, st.MissRate(), st.FalsePosRate)

	fmt.Println("forwarded spans, as seen by the new analyzer:")
	mw := out.Forwarded[protocols.ZigBee]
	fmt.Printf("  %d merged spans, %.0f us total\n", len(mw),
		float64(iq.TotalLen(mw))/8)
}
