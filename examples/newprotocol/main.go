// Newprotocol demonstrates the architecture's protocol extensibility
// (paper Sections 2.1 and 3.2, which use ZigBee as the worked example):
// adding support for a new technology costs only registering a protocol
// module — a small timing detector over the existing protocol-agnostic
// peak metadata, plus optionally an analyzer for the analysis stage —
// against the public registry API. The peak detector, dispatcher, flag
// grammar and the rest of the pipeline pick the new protocol up without
// a single change under internal/core.
//
// This binary deliberately does NOT import internal/protocols/builtin:
// the ZigBee module below is registered exactly the way an out-of-tree
// plugin would register a protocol the built-in set has never heard of.
//
// Here the new protocol is IEEE 802.15.4 (ZigBee): the timing block
// matches the 192 us turnaround between data frames and their ACKs, and
// a custom analyzer verifies the O-QPSK chip structure of forwarded
// blocks via the generic phase tools.
//
//	go run ./examples/newprotocol
package main

import (
	"fmt"
	"log"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// zigbeeVerifier is the example analyzer: it inspects blocks the ZigBee
// timing detector forwarded and reports whether the signal looks like
// half-sine O-QPSK (continuous phase, so the GFSK smoothness test also
// accepts it — the constellation estimator then separates the two).
type zigbeeVerifier struct{}

func (zigbeeVerifier) Name() string                { return "zigbee-verify" }
func (zigbeeVerifier) Accepts(f protocols.ID) bool { return f == protocols.ZigBee }
func (zigbeeVerifier) Analyze(src protocols.SampleSource, req protocols.AnalysisRequest, emit func(flowgraph.Item)) error {
	samples := src.Slice(req.Span)
	smooth := core.IsGFSK(samples, 0.9)
	// O-QPSK at 2 Mchip/s: estimate the constellation at chip spacing.
	est := core.EstimateConstellation(samples, 4, 16)
	emit(fmt.Sprintf("zigbee block %v: continuous-phase=%v constellation=%d-ary (occupancy %.2f)",
		req.Span, smooth, est.Points, est.Occupancy))
	return nil
}

// registerZigBee is the whole cost of teaching the system a new
// protocol: one module, one detector spec, one analyzer factory.
func registerZigBee() {
	m := protocols.MustRegister(&protocols.Module{
		ID:  protocols.ZigBee,
		Key: "zigbee",
	})
	m.MustAddDetector(protocols.DetectorSpec{
		Name:  "zigbee-timing",
		Class: protocols.ClassTiming,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return core.NewZigBeeTiming(env.Clock)
		},
	})
	m.SetAnalyzer(func(protocols.AnalyzerOptions) protocols.Analyzer {
		return zigbeeVerifier{}
	})
}

func main() {
	registerZigBee()

	res, err := ether.Run(ether.Config{
		SNRdB: 22,
		Seed:  3,
		Sources: []mac.Source{
			&mac.ZigBeeSource{
				Reports: 12, PayloadBytes: 48,
				Interval: 400_000, OffsetHz: 1_000_000,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ether: %.0f ms with %d ZigBee transmissions (data + MAC ACKs)\n\n",
		1000*float64(len(res.Samples))/float64(res.Clock.Rate),
		res.Truth.VisibleCount(protocols.ZigBee))

	// Extend the pipeline through the registry: the same selector
	// grammar rfdump's -detectors flag uses resolves the new module, and
	// the analysis stage picks the verifier up from its factory. Nothing
	// else changes.
	cfg, err := core.ParseDetectors("zigbee")
	if err != nil {
		log.Fatal(err)
	}
	mon := arch.NewRFDump("rfdump+zigbee", res.Clock, cfg,
		core.RegistryAnalyzers(protocols.AnalyzerOptions{})...)
	out, err := mon.Process(res.Samples)
	if err != nil {
		log.Fatal(err)
	}

	st := truth.Match(res.Truth, out.TruthDetections(), protocols.ZigBee)
	fmt.Printf("ZigBee timing detector: found %d/%d frames (miss %.3f, fp-rate %.5f)\n\n",
		st.Found, st.Total, st.MissRate(), st.FalsePosRate)

	fmt.Println("forwarded spans, as seen by the new analyzer:")
	mw := out.Forwarded[protocols.ZigBee]
	fmt.Printf("  %d merged spans, %.0f us total\n", len(mw),
		float64(iq.TotalLen(mw))/8)
}
