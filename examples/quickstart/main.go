// Quickstart: synthesize a small slice of the wireless ether in memory
// (802.11b pings and a Bluetooth piconet sharing the band), run the
// RFDump pipeline over it, and print what the fast detectors and the
// demodulators saw.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

const (
	lap = 0x9E8B33
	uap = 0x47
)

func main() {
	// 1. Put some traffic on the ether.
	sta := func(b byte) (a wifi.Addr) {
		for i := range a {
			a[i] = b
		}
		return
	}
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  1,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate:         protocols.WiFi80211b1M,
				Pings:        5,
				PayloadBytes: 200,
				InterPing:    60_000,
				Requester:    sta(0x11),
				Responder:    sta(0x22),
				BSSID:        sta(0x33),
			},
			&mac.BluetoothPiconet{LAP: lap, UAP: uap, Pings: 30},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ether: %.0f ms, %d transmissions, %.1f%% busy\n\n",
		1000*float64(len(res.Samples))/float64(res.Clock.Rate),
		len(res.Truth.Records), 100*res.Utilization())

	// 2. Monitor it with RFDump: timing + phase detection feeding the
	// 802.11b and Bluetooth demodulators.
	monitor := arch.NewRFDump("rfdump", res.Clock, core.TimingAndPhase(),
		demod.NewWiFiDemod(),
		demod.NewBTDemod(lap, uap, 8),
	)
	out, err := monitor.Process(res.Samples)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Look at the result.
	fmt.Println("fast detections:")
	for _, d := range out.Detections {
		fmt.Printf("  t=%8.3fms %-9s by %-13s conf=%.2f\n",
			1000*float64(d.Span.Start)/float64(res.Clock.Rate),
			d.Family.FamilyName(), d.Detector, d.Confidence)
	}
	fmt.Println("\ndecoded packets:")
	for _, p := range out.Packets {
		fmt.Printf("  t=%8.3fms %s\n",
			1000*float64(p.Span.Start)/float64(res.Clock.Rate), p)
	}
	fmt.Printf("\nCPU/real-time: %.2fx on a single core\n", out.CPUPerRealTime())
}
