// Diagnosis is the paper's motivating use case (Sections 1-2): a Wi-Fi
// network performs badly and single-NIC tools show nothing wrong, because
// the interferer is not a Wi-Fi device. RFDump sees below the link layer:
// this example monitors an ether shared by an 802.11b network and a
// microwave oven, attributes medium occupancy per technology, and shows
// how Wi-Fi transmission opportunities disappear while the oven radiates.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

func main() {
	sta := func(b byte) (a wifi.Addr) {
		for i := range a {
			a[i] = b
		}
		return
	}
	res, err := ether.Run(ether.Config{
		Duration: 8_000_000, // 1 s
		SNRdB:    18,
		Seed:     5,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 1 << 20,
				PayloadBytes: 300, InterPing: 200_000,
				Requester: sta(0x11), Responder: sta(0x22), BSSID: sta(0x33),
			},
			&mac.MicrowaveSource{SNROffsetDB: 10},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Monitor with timing + phase detection plus the microwave detector.
	cfg := core.TimingAndPhase()
	cfg.Detectors = append(cfg.Detectors, core.MicrowaveTimingSpec())
	mon := arch.NewRFDump("diagnosis", res.Clock, cfg)
	out, err := mon.Process(res.Samples)
	if err != nil {
		log.Fatal(err)
	}

	// Attribute medium occupancy per family from the forwarded spans.
	total := float64(len(res.Samples))
	fmt.Println("medium occupancy by technology (detected):")
	for _, fam := range []protocols.ID{protocols.WiFi80211b1M, protocols.Microwave, protocols.Bluetooth} {
		spans := out.Forwarded[fam]
		busy := float64(iq.TotalLen(spans))
		if busy == 0 {
			continue
		}
		fmt.Printf("  %-10s %5.1f%% of airtime (%d bursts)\n",
			fam.FamilyName(), 100*busy/total, len(spans))
	}

	// Show the oven's duty cycle against Wi-Fi activity on a timeline.
	fmt.Println("\ntimeline (50 ms per column: W = Wi-Fi seen, M = microwave seen):")
	const cols = 20
	colLen := iq.Tick(len(res.Samples) / cols)
	for _, fam := range []protocols.ID{protocols.WiFi80211b1M, protocols.Microwave} {
		line := make([]byte, cols)
		for i := range line {
			line[i] = '.'
		}
		for _, span := range out.Forwarded[fam] {
			for c := span.Start / colLen; c <= (span.End-1)/colLen && int(c) < cols; c++ {
				if fam == protocols.Microwave {
					line[c] = 'M'
				} else {
					line[c] = 'W'
				}
			}
		}
		fmt.Printf("  %-10s %s\n", fam.FamilyName(), line)
	}

	// The punch line: a single-NIC tool sees only its own packets; the
	// microwave rows above are invisible to it.
	mwBusy := iq.TotalLen(out.Forwarded[protocols.Microwave])
	fmt.Printf("\ndiagnosis: a non-Wi-Fi interferer occupies %.1f%% of the band;\n",
		100*float64(mwBusy)/total)
	fmt.Println("its bursts recur at the AC line period with constant envelope -> microwave oven.")
}
