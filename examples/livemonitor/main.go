// Livemonitor demonstrates the real-time story of the architecture
// (paper Section 1: processing may lag by a bounded delay but must keep
// up with the ether): the monitor consumes a sample stream block by
// block through a bounded sliding window — no full-trace buffering —
// and reports detections and decoded packets through live callbacks.
//
// A waterfall of the first portion of the stream is printed first, the
// quick "what is in this band" look.
//
//	go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/flowgraph"
	"rfdump/internal/frontend"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
)

const (
	lap = 0x9E8B33
	uap = 0x47
)

func main() {
	sta := func(b byte) (a wifi.Addr) {
		for i := range a {
			a[i] = b
		}
		return
	}
	// The "antenna": a synthesized ether with three technologies.
	res, err := ether.Run(ether.Config{
		Duration: 4_000_000, // 500 ms
		SNRdB:    20,
		Seed:     77,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 1 << 20,
				PayloadBytes: 300, InterPing: 400_000,
				Requester: sta(0x11), Responder: sta(0x22), BSSID: sta(0x33),
			},
			&mac.BluetoothPiconet{LAP: lap, UAP: uap, Pings: 200, InterPingSlots: 16},
			&mac.WiFiGUnicast{
				Pings: 1 << 20, PayloadBytes: 400, InterPing: 500_000,
				Requester: sta(0x44), Responder: sta(0x55), BSSID: sta(0x66),
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.Waterfall(res.Samples[:800_000], res.Clock.Rate, 16, 56))
	fmt.Println()

	// Live monitoring: detectors incl. the OFDM extension, demodulators
	// attached, 100 ms sliding window (1/5 of the trace resident at any
	// time).
	cfg := core.TimingAndPhase()
	cfg.Detectors = append(cfg.Detectors, core.OFDMSpec(core.OFDMConfig{}))
	pipeline := core.NewPipeline(res.Clock, cfg,
		demod.NewWiFiDemod(),
		demod.NewBTDemod(lap, uap, 8),
	)

	lines := 0
	start := time.Now()
	out, err := pipeline.RunStream(frontend.NewMemorySource(res.Samples), core.StreamConfig{
		WindowSamples: 800_000,
		OnDetection: func(d core.Detection) {
			if lines < 12 {
				fmt.Printf("live: t=%7.1fms DETECT %-9s by %s\n",
					1000*float64(d.Span.Start)/float64(res.Clock.Rate),
					d.Family.FamilyName(), d.Detector)
				lines++
			}
		},
		OnOutput: func(item flowgraph.Item) {
			if p, ok := item.(demod.Packet); ok && p.Valid && lines < 24 {
				fmt.Printf("live: t=%7.1fms PACKET %s\n",
					1000*float64(p.Span.Start)/float64(res.Clock.Rate), p)
				lines++
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("\n[%d more events suppressed]\n", len(out.Detections)+len(out.Outputs)-lines)
	fmt.Printf("processed %.0f ms of ether in %.0f ms wall time (%.2fx real time)\n",
		1000*float64(out.StreamLen)/float64(res.Clock.Rate),
		float64(wall)/1e6, out.CPUPerRealTime())
	fmt.Printf("resident window: %d samples (%.0f ms) — %.0f%% of the trace\n",
		800_000, 100.0, 100*800_000/float64(len(res.Samples)))
}
